"""Processing elements: II pacing, buffer updates, lifecycle."""

import numpy as np
import pytest

from repro.apps.histo import HistogramKernel
from repro.core.pe import ProcessingElement
from repro.sim.channel import Channel


def make_pe(ii=2, pe_id=0, bins=64, pripes=4):
    kernel = HistogramKernel(bins=bins, pripes=pripes)
    ch = Channel("in", capacity=64)
    pe = ProcessingElement(f"pe{pe_id}", pe_id, kernel, ch, ii=ii)
    return pe, ch, kernel


def test_rejects_bad_ii():
    kernel = HistogramKernel(bins=64, pripes=4)
    with pytest.raises(ValueError):
        ProcessingElement("pe", 0, kernel, Channel("c"), ii=0)

def test_processes_one_tuple_per_ii_cycles():
    pe, ch, kernel = make_pe(ii=2)
    for i in range(4):
        ch.write((0, 0, 1))
    ch.commit()
    for cycle in range(8):
        pe.tick(cycle)
    assert pe.tuples_processed == 4     # 8 cycles / II=2

def test_ii_one_processes_every_cycle():
    pe, ch, kernel = make_pe(ii=1)
    for i in range(4):
        ch.write((0, 0, 1))
    ch.commit()
    for cycle in range(4):
        pe.tick(cycle)
    assert pe.tuples_processed == 4

def test_buffer_update_applies_kernel_logic():
    pe, ch, kernel = make_pe(ii=1, pe_id=0)
    key = 0
    # Find keys whose bin routes to PE 0 for a clean local update check.
    keys = [k for k in range(1000) if kernel.route(k) == 0][:5]
    for k in keys:
        ch.write((0, k, 1))
    ch.commit()
    for cycle in range(10):
        pe.tick(cycle)
    assert pe.buffer.sum() == len(keys)
    del key

def test_idle_when_channel_empty():
    pe, ch, kernel = make_pe()
    pe.tick(0)
    assert pe.idle_cycles == 1
    assert not pe.done

def test_finishes_when_channel_exhausts():
    pe, ch, kernel = make_pe()
    ch.close()
    ch.commit()
    pe.tick(0)
    assert pe.done

def test_reset_buffer_gives_fresh_zeroed_state():
    pe, ch, kernel = make_pe(ii=1)
    ch.write((0, 0, 1))
    ch.commit()
    pe.tick(0)
    assert pe.tuples_since_merge == 1
    old = pe.buffer
    pe.reset_buffer()
    assert pe.tuples_since_merge == 0
    assert pe.buffer is not old
    assert np.all(pe.buffer == 0)
    assert pe.tuples_processed == 1     # cumulative count survives

def test_secondary_flag():
    kernel = HistogramKernel(bins=64, pripes=4)
    pe = ProcessingElement("s", 5, kernel, Channel("c"), is_secondary=True)
    assert pe.is_secondary
