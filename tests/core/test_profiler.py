"""Runtime profiler: the Fig. 5 greedy plan, plan invariants, and the
monitor/reschedule path."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.mapper import DETACH
from repro.core.profiler import (
    RESCHEDULE,
    RuntimeProfiler,
    SchedulingPlan,
    greedy_secpe_plan,
)
from repro.sim.channel import Channel


class TestGreedyPlan:
    def test_fig5_style_example(self):
        """Two SecPEs go to the dominant PriPE 2 (its workload is divided
        to one-third), the third goes to the runner-up — the Fig. 4/5
        walkthrough (plan 4->2, 5->2, 6->0)."""
        workloads = [60, 30, 150, 40]
        plan = greedy_secpe_plan(workloads, 3)
        assert plan.pairs == [(4, 2), (5, 2), (6, 0)]

    def test_no_secpes_gives_empty_plan(self):
        assert greedy_secpe_plan([5, 5], 0).pairs == []

    def test_all_on_one_pe(self):
        plan = greedy_secpe_plan([0, 100, 0, 0], 3)
        assert all(pripe == 1 for _, pripe in plan.pairs)

    def test_uniform_spreads_assignments(self):
        plan = greedy_secpe_plan([10, 10, 10, 10], 3)
        targets = [p for _, p in plan.pairs]
        assert len(set(targets)) == 3     # no PriPE helped twice

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            greedy_secpe_plan([1, 2], 1, pripes=3)
        with pytest.raises(ValueError):
            greedy_secpe_plan([1, 2], -1)

    def test_plan_lookups(self):
        plan = SchedulingPlan(pairs=[(4, 2), (5, 2), (6, 0)])
        assert plan.assignments_for(2) == [4, 5]
        assert plan.assignments_for(1) == []
        assert plan.pripe_of(6) == 0
        assert plan.pripe_of(9) is None


@given(
    workloads=st.lists(st.integers(min_value=0, max_value=10_000),
                       min_size=2, max_size=16),
    data=st.data(),
)
def test_property_greedy_plan_invariants(workloads, data):
    """Every SecPE is assigned exactly once, ids are sequential from M,
    and the plan minimises the maximum effective load greedily: after
    planning, no reassignment of the *last* SecPE strictly improves the
    bottleneck."""
    m = len(workloads)
    secpes = data.draw(st.integers(min_value=0, max_value=m - 1))
    plan = greedy_secpe_plan(workloads, secpes)
    assert len(plan.pairs) == secpes
    assert [s for s, _ in plan.pairs] == list(range(m, m + secpes))
    attached = np.zeros(m)
    for _, p in plan.pairs:
        attached[p] += 1
    base = np.asarray(workloads, dtype=float)
    eff = base / (1 + attached)
    if secpes:
        last_secpe, last_target = plan.pairs[-1]
        bottleneck = eff.max()
        for alternative in range(m):
            if alternative == last_target:
                continue
            trial = attached.copy()
            trial[last_target] -= 1
            trial[alternative] += 1
            trial_eff = base / (1 + trial)
            assert trial_eff.max() >= bottleneck - 1e-9


class ProfilerHarness:
    """Wires a profiler to in-memory channels for direct driving."""

    def __init__(self, pripes=4, secpes=3, lanes=2, profiling_cycles=4,
                 monitor_window=8, threshold=0.5):
        self.stats = [Channel(f"s{i}", capacity=64) for i in range(lanes)]
        self.plans = [Channel(f"p{i}", capacity=16) for i in range(lanes)]
        self.merger = Channel("merger", capacity=16)
        self.host = Channel("host", capacity=16)
        self.profiler = RuntimeProfiler(
            "prof", pripes, secpes, self.stats, self.plans, self.merger,
            self.host, profiling_cycles=profiling_cycles,
            monitor_window=monitor_window, reschedule_threshold=threshold,
        )

    def commit(self):
        for ch in self.stats + self.plans + [self.merger, self.host]:
            ch.commit()

    def feed(self, pripe_ids):
        for i, pid in enumerate(pripe_ids):
            self.stats[i % len(self.stats)].write(pid)


class TestProfilerPhases:
    def test_profiling_then_plan_emission(self):
        h = ProfilerHarness(profiling_cycles=3)
        # Feed PriPE 2 heavily during the window.
        for cycle in range(3):
            h.feed([2, 2])
            h.commit()
            h.profiler.tick(cycle)
        # Window over: plan generated and sent to the merger.
        h.commit()
        assert h.merger.can_read()
        plan = h.merger.read()
        assert all(p == 2 for _, p in plan.pairs)
        # Pairs now stream out one per cycle to every mapper.
        for cycle in range(3, 6):
            h.profiler.tick(cycle)
            h.commit()
        received = []
        while h.plans[0].can_read():
            received.append(h.plans[0].read())
        assert received == plan.pairs
        assert h.plans[1].total_read + len(list(h.plans[1])) == len(plan.pairs)

    def test_reschedule_on_throughput_drop(self):
        h = ProfilerHarness(profiling_cycles=2, monitor_window=4,
                            threshold=0.5)
        cycle = 0
        # Profile + emit (3 secpes -> 3 emission cycles + transition).
        for _ in range(8):
            h.feed([0, 1])
            h.commit()
            h.profiler.tick(cycle)
            cycle += 1
        # Full-rate monitoring windows to set the peak.
        for _ in range(8):
            h.feed([0, 1])
            h.commit()
            h.profiler.tick(cycle)
            cycle += 1
        # Starve the stats channels: throughput collapses.
        for _ in range(12):
            h.commit()
            h.profiler.tick(cycle)
            cycle += 1
            if h.profiler.done:
                break
        assert h.profiler.reschedules_triggered == 1
        assert h.profiler.done
        h.commit()
        # Detach messages and host notification went out.
        plan_msgs = list(h.plans[0])
        assert DETACH in plan_msgs
        assert DETACH in list(h.merger)
        assert RESCHEDULE in list(h.host)

    def test_threshold_zero_never_reschedules(self):
        h = ProfilerHarness(profiling_cycles=2, monitor_window=4,
                            threshold=0.0)
        cycle = 0
        for _ in range(10):
            h.feed([0, 1])
            h.commit()
            h.profiler.tick(cycle)
            cycle += 1
        for _ in range(20):   # starvation would trigger if enabled
            h.commit()
            h.profiler.tick(cycle)
            cycle += 1
        assert h.profiler.reschedules_triggered == 0
        assert not h.profiler.done

    def test_restart_resets_phase_and_histograms(self):
        h = ProfilerHarness(profiling_cycles=2)
        # Feed exactly the profiling window so no stale stats remain.
        for cycle in range(2):
            h.feed([3, 3])
            h.commit()
            h.profiler.tick(cycle)
        h.commit()
        h.profiler.tick(2)                 # emission
        first_plan = h.profiler.current_plan
        assert first_plan is not None
        assert all(p == 3 for _, p in first_plan.pairs)
        h.profiler.restart()
        assert h.profiler.current_plan is None
        assert not h.profiler.done
        # A fresh window counts from zero and can produce a new plan.
        for cycle in range(3, 12):
            h.feed([1, 1])
            h.commit()
            h.profiler.tick(cycle)
            if h.profiler.current_plan is not None:
                break
        assert all(p == 1 for _, p in h.profiler.current_plan.pairs)

    def test_finishes_when_stats_channels_close(self):
        h = ProfilerHarness(profiling_cycles=2)
        for ch in h.stats:
            ch.close()
        h.commit()
        h.profiler.tick(0)
        assert h.profiler.done

    def test_requires_matching_channel_counts(self):
        with pytest.raises(ValueError):
            RuntimeProfiler(
                "p", 4, 1, [Channel("s0")], [],
                Channel("m"), Channel("h"),
            )
