"""Data routing: decoder masks, combiner broadcast, filter extraction,
conservation and backpressure."""

import pytest
from hypothesis import given, strategies as st

from repro.core.routing import Combiner, FilterDecoder, decode_mask
from repro.sim.channel import Channel
from repro.sim.engine import Simulator


class TestDecodeMask:
    def test_positions_of_matches(self):
        group = [(0, 1, 1), (2, 2, 1), (0, 3, 1)]
        assert decode_mask(group, 0) == [0, 2]
        assert decode_mask(group, 2) == [1]
        assert decode_mask(group, 5) == []

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=16),
           st.integers(min_value=0, max_value=7))
    def test_property_mask_partition(self, dsts, pe_id):
        """Every tuple appears in exactly one PE's mask; masks partition
        the group."""
        group = [(d, i, 1) for i, d in enumerate(dsts)]
        all_positions = []
        for pe in range(8):
            all_positions.extend(decode_mask(group, pe))
        assert sorted(all_positions) == list(range(len(group)))
        assert decode_mask(group, pe_id) == [
            i for i, d in enumerate(dsts) if d == pe_id
        ]


def build_routing(num_pes=4, lanes=2, group_depth=4, pe_depth=8,
                  lane_depth=64):
    sim = Simulator()
    lanes_ch = [sim.add_channel(Channel(f"in{i}", capacity=lane_depth))
                for i in range(lanes)]
    groups = [sim.add_channel(Channel(f"g{j}", capacity=group_depth))
              for j in range(num_pes)]
    pe_ch = [sim.add_channel(Channel(f"pe{j}", capacity=pe_depth))
             for j in range(num_pes)]
    combiner = sim.add_module(Combiner("comb", lanes_ch, groups))
    filters = [sim.add_module(FilterDecoder(f"f{j}", j, groups[j], pe_ch[j]))
               for j in range(num_pes)]
    return sim, lanes_ch, groups, pe_ch, combiner, filters


class TestCombiner:
    def test_requires_lanes_and_outputs(self):
        with pytest.raises(ValueError):
            Combiner("c", [], [Channel("g")])
        with pytest.raises(ValueError):
            Combiner("c", [Channel("i")], [])

    def test_broadcasts_group_to_every_datapath(self):
        sim, lanes, groups, pe_ch, comb, filters = build_routing()
        lanes[0].write((0, 10, 1))
        lanes[1].write((3, 11, 1))
        for ch in lanes:
            ch.commit()
        comb.tick(0)
        for g in groups:
            g.commit()
        seen = [g.peek() for g in groups]
        assert all(s == seen[0] for s in seen)
        assert len(seen[0]) == 2

    def test_stalls_when_any_group_channel_full(self):
        sim, lanes, groups, pe_ch, comb, filters = build_routing(
            group_depth=1)
        groups[2].write(((0, 0, 0),))      # fill one datapath
        groups[2].commit()
        lanes[0].write((0, 1, 1))
        lanes[0].commit()
        comb.tick(0)
        assert comb.stall_cycles == 1
        assert comb.groups_issued == 0

    def test_partial_groups_from_idle_lanes(self):
        sim, lanes, groups, pe_ch, comb, filters = build_routing()
        lanes[0].write((1, 5, 1))          # lane 1 has nothing
        lanes[0].commit()
        lanes[1].commit()
        comb.tick(0)
        for g in groups:
            g.commit()
        assert len(groups[0].peek()) == 1

    def test_closes_downstream_when_inputs_exhaust(self):
        sim, lanes, groups, pe_ch, comb, filters = build_routing()
        for ch in lanes:
            ch.close()
            ch.commit()
        comb.tick(0)
        for g in groups:
            g.commit()
        assert comb.done
        assert all(g.closed for g in groups)


class TestFilterDecoder:
    def test_extracts_only_matching_tuples(self):
        group_in = Channel("g", capacity=4)
        pe_out = Channel("pe", capacity=8)
        filt = FilterDecoder("f", 1, group_in, pe_out)
        group_in.write(((1, 10, 1), (0, 11, 1), (1, 12, 1)))
        group_in.commit()
        filt.tick(0)
        pe_out.commit()
        out = [pe_out.read(), pe_out.read()]
        assert [o[1] for o in out] == [10, 12]
        assert filt.tuples_forwarded == 2

    def test_holds_overflow_and_backpressures(self):
        group_in = Channel("g", capacity=4)
        pe_out = Channel("pe", capacity=1)
        filt = FilterDecoder("f", 0, group_in, pe_out)
        group_in.write(((0, 1, 1), (0, 2, 1), (0, 3, 1)))
        group_in.write(((0, 4, 1),))
        group_in.commit()
        filt.tick(0)
        pe_out.commit()
        assert pe_out.occupancy == 1       # capacity-bound
        assert filt._pending                # held internally
        # Next cycle: drains pending before taking a new group.
        pe_out.read()
        filt.tick(1)
        pe_out.commit()
        assert filt.stall_cycles >= 1 or filt.tuples_forwarded >= 2

    def test_finishes_when_group_channel_exhausts(self):
        group_in = Channel("g", capacity=4)
        pe_out = Channel("pe", capacity=8)
        filt = FilterDecoder("f", 0, group_in, pe_out)
        group_in.close()
        group_in.commit()
        filt.tick(0)
        assert filt.done
        pe_out.commit()
        assert pe_out.closed


class TestConservation:
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                    max_size=60))
    def test_property_every_tuple_reaches_its_pe(self, dsts):
        """Multiset conservation: the routing fabric neither drops nor
        duplicates tuples, and each arrives at its designated PE.

        PE channels are sized to hold the whole stream because this
        harness has no PE modules draining them.
        """
        sim, lanes, groups, pe_ch, comb, filters = build_routing(
            pe_depth=128)
        for i, d in enumerate(dsts):
            lanes[i % 2].write((d, i, 1))
        for ch in lanes:
            ch.close()
        report = sim.run(max_cycles=2000)
        assert report.completed
        delivered = {}
        for j, ch in enumerate(pe_ch):
            for (dst, key, value) in ch:
                assert dst == j
                delivered[key] = j
        assert len(delivered) == len(dsts)
        for key, pe in delivered.items():
            assert dsts[key] == pe

    def test_hot_pe_backpressures_whole_fabric(self):
        """All tuples to PE 0 with a shallow PE channel: the combiner must
        stall (the skew collapse mechanism)."""
        sim, lanes, groups, pe_ch, comb, filters = build_routing(
            group_depth=2, pe_depth=2)
        for i in range(40):
            lanes[i % 2].write((0, i, 1))
        for ch in lanes:
            ch.close()
        sim.run(max_cycles=60)             # not enough to drain PE 0
        assert comb.stall_cycles > 0
