"""Skew analyzer: Eq. 2 anchor cases and sampling behaviour."""

import numpy as np
import pytest

from repro.apps.histo import HistogramKernel
from repro.ditto.analyzer import SkewAnalyzer, eq2_required_secpes
from repro.workloads.zipf import ZipfGenerator


class TestEq2:
    def test_uniform_needs_zero(self):
        """Every ratio ~1 -> each term ceils to 1 -> X = 0."""
        workloads = np.full(16, 1000.0)
        assert eq2_required_secpes(workloads, noise_sigmas=0.0) == 0

    def test_all_on_one_pe_needs_m_minus_1(self):
        """The §V-C worst case: X = M - 1."""
        workloads = np.zeros(16)
        workloads[3] = 10_000
        assert eq2_required_secpes(workloads, noise_sigmas=0.0) == 15

    def test_double_load_needs_one(self):
        """A PE at 2x the average needs one SecPE."""
        workloads = np.full(16, 1000.0)
        workloads[0] = 2 * (workloads.sum() - 1000) / 14  # keep it simple:
        workloads = np.full(16, 1000.0)
        workloads[0] = 2142.0   # ratio ~2.0 of the new mean
        x = eq2_required_secpes(workloads, noise_sigmas=0.0)
        assert x == 1

    def test_requirement_clamped_to_m_minus_1(self):
        workloads = np.zeros(8)
        workloads[0] = 1.0
        assert eq2_required_secpes(workloads, noise_sigmas=0.0) == 7

    def test_zero_total_needs_zero(self):
        assert eq2_required_secpes(np.zeros(16)) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            eq2_required_secpes(np.zeros(0))

    def test_noise_guard_absorbs_sampling_noise(self):
        """A noisy uniform sample must not demand SecPEs (the paper's
        Fig. 7 ticks choose 16P at alpha = 0)."""
        rng = np.random.default_rng(0)
        sample = rng.integers(0, 16, size=25_600)
        workloads = np.bincount(sample, minlength=16).astype(float)
        assert eq2_required_secpes(workloads, noise_sigmas=2.0) == 0
        # Verbatim formula (no guard) over-demands — documenting why the
        # guard exists.
        assert eq2_required_secpes(workloads, noise_sigmas=0.0) > 0


class TestAnalyzer:
    def test_validation(self):
        with pytest.raises(ValueError):
            SkewAnalyzer(sample_fraction=0.0)
        with pytest.raises(ValueError):
            SkewAnalyzer(tolerance=-0.1)

    def test_sample_fraction_is_respected(self):
        batch = ZipfGenerator(alpha=0.0, seed=1).generate(100_000)
        analyzer = SkewAnalyzer(sample_fraction=0.001)
        report = analyzer.analyze(batch, HistogramKernel(bins=512, pripes=16))
        assert report.sample_size == 100

    def test_requirement_grows_with_skew(self):
        kernel = HistogramKernel(bins=512, pripes=16)
        analyzer = SkewAnalyzer(sample_fraction=0.01)
        requirements = []
        for alpha in [0.0, 1.0, 2.0, 3.0]:
            batch = ZipfGenerator(alpha=alpha, seed=2).generate(100_000)
            requirements.append(
                analyzer.analyze(batch, kernel).required_secpes
            )
        assert requirements[0] == 0
        assert requirements == sorted(requirements)
        assert requirements[-1] >= 10

    def test_report_shares_sum_to_one(self):
        batch = ZipfGenerator(alpha=1.0, seed=3).generate(50_000)
        analyzer = SkewAnalyzer(sample_fraction=0.01)
        report = analyzer.analyze(batch, HistogramKernel(bins=512, pripes=16))
        assert report.shares.sum() == pytest.approx(1.0)
        assert 0.0 < report.max_share <= 1.0
