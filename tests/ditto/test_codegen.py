"""OpenCL code generation: structure of the emitted source set."""

import re

import pytest

from repro.core.config import ArchitectureConfig
from repro.ditto.codegen import (
    OpenCLGenerator,
    generate_implementation_set,
)
from repro.ditto.spec import histogram_spec


@pytest.fixture
def generator():
    return OpenCLGenerator()


@pytest.fixture
def source(generator):
    return generator.generate(
        histogram_spec(), ArchitectureConfig(secpes=4))


class TestStructure:
    def test_file_set_with_skew_handling(self, source):
        assert set(source.files) == {
            "common.h", "prepe.cl", "mapper.cl", "routing.cl", "pe.cl",
            "profiler.cl", "merger.cl",
        }

    def test_file_set_without_skew_handling(self, generator):
        src = generator.generate(histogram_spec(),
                                 ArchitectureConfig(secpes=0))
        assert "mapper.cl" not in src.files
        assert "profiler.cl" not in src.files
        assert "merger.cl" not in src.files

    def test_kernel_count_matches_architecture(self, source):
        # 8 PrePEs + 8 mappers + 1 combiner + 20 filters + 20 PEs
        # + profiler + merger = 58.
        assert source.kernel_count == 8 + 8 + 1 + 20 + 20 + 1 + 1

    def test_channel_topology_declared(self, source):
        header = source.files["common.h"]
        assert "channel tuple_t  lane_ch[8]" in header
        assert "channel group_t  group_ch[20]" in header
        assert "cl_intel_channels" in header

    def test_channel_depths_follow_config(self, generator):
        cfg = ArchitectureConfig(secpes=2, channel_depth=256,
                                 group_channel_depth=32)
        src = generator.generate(histogram_spec(), cfg)
        header = src.files["common.h"]
        assert "depth(256)" in header
        assert "depth(32)" in header

    def test_autorun_pipeline_kernels(self, source):
        for name in ["prepe.cl", "mapper.cl", "routing.cl", "pe.cl"]:
            assert "__attribute__((autorun))" in source.files[name]
        # Profiler is host-enqueued (re-enqueued on reschedule), so it
        # must NOT be autorun.
        assert "autorun" not in source.files["profiler.cl"]

    def test_mapper_encodes_fig4_mechanics(self, source):
        mapper = source.files["mapper.cl"]
        assert "uchar table[16][5]" in mapper     # M x (X+1) for X=4
        assert "counter[pripe]++" in mapper
        assert "rr[row] % counter[row]" in mapper # round-robin boundary
        assert "0xff" in mapper                   # DETACH encoding

    def test_profiler_emits_greedy_plan(self, source):
        profiler = source.files["profiler.cl"]
        assert "merged[p] / (1 + attached[p])" in profiler
        assert "return;" in profiler              # exits itself
        assert "host_ctl_ch" in profiler

    def test_pe_kinds_labelled(self, source):
        pe = source.files["pe.cl"]
        assert pe.count("PriPE #") == 16
        assert pe.count("SecPE #") == 4

    def test_route_expression_inlined(self, source):
        assert "t.key & 0x" in source.files["prepe.cl"]


class TestPerAppHints:
    """Each spec carries its own Listing-2 bodies for the generator."""

    @pytest.mark.parametrize("spec_name,fragment", [
        ("histogram_spec", "hist[HASH(r.key) >> LOG2_M]++"),
        ("partition_spec", "flush(RADIX(r.key))"),
        ("hyperloglog_spec", "clz(MURMUR3(r.key)"),
        ("heavy_hitter_spec", "CMS_HASH(d, r.key)"),
    ])
    def test_app_bodies_inlined(self, spec_name, fragment):
        from repro.ditto import spec as spec_module
        spec = getattr(spec_module, spec_name)()
        gen = OpenCLGenerator.from_spec(spec)
        src = gen.generate(spec, ArchitectureConfig(secpes=1))
        assert fragment in src.files["pe.cl"]

    def test_pagerank_prepare_value_reads_contributions(self):
        from repro.ditto.spec import pagerank_spec
        spec = pagerank_spec(1024)
        src = OpenCLGenerator.from_spec(spec).generate(
            spec, ArchitectureConfig(secpes=0))
        assert "contrib[t.value]" in src.files["prepe.cl"]

    def test_set_generation_uses_spec_hints(self):
        sources = generate_implementation_set(
            histogram_spec(), [ArchitectureConfig(secpes=0)])
        assert "HASH(t.key) & 0x" in sources[0].files["prepe.cl"]


class TestImplementationSet:
    def test_one_source_per_config(self):
        base = ArchitectureConfig()
        configs = [base.with_secpes(x) for x in [0, 1, 2, 4, 8, 15]]
        sources = generate_implementation_set(histogram_spec(), configs)
        assert [s.label for s in sources] == [
            "16P", "16P+1S", "16P+2S", "16P+4S", "16P+8S", "16P+15S"]

    def test_kernel_count_scales_with_secpes(self):
        base = ArchitectureConfig()
        small = OpenCLGenerator().generate(histogram_spec(),
                                           base.with_secpes(1))
        large = OpenCLGenerator().generate(histogram_spec(),
                                           base.with_secpes(15))
        assert large.kernel_count == small.kernel_count + 2 * 14

    def test_full_text_is_balanced(self, source):
        """Sanity: braces balance in every generated file (catches
        template formatting regressions)."""
        for name, text in source.files.items():
            assert text.count("{") == text.count("}"), name

    def test_no_unexpanded_placeholders(self, source):
        for name, text in source.files.items():
            leftovers = re.findall(r"\{[a-z_]+\}", text)
            assert not leftovers, (name, leftovers)
