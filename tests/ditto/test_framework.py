"""End-to-end Ditto framework runs."""

import numpy as np
import pytest

from repro.ditto.framework import DittoFramework
from repro.ditto.spec import (
    heavy_hitter_spec,
    histogram_spec,
    hyperloglog_spec,
    pagerank_spec,
    partition_spec,
)
from repro.workloads.zipf import ZipfGenerator


@pytest.fixture(scope="module")
def framework():
    return DittoFramework(histogram_spec(bins=512),
                          secpe_counts=[0, 1, 2, 4, 8, 15])


class TestSpecs:
    def test_all_five_specs_build_kernels(self):
        for spec in [histogram_spec(), partition_spec(),
                     pagerank_spec(100), hyperloglog_spec(),
                     heavy_hitter_spec()]:
            kernel = spec.kernel_factory(16)
            assert kernel.pripes == 16

    def test_spec_lines_match_paper_productivity_claims(self):
        assert histogram_spec().spec_lines == 6     # vs ~200 in [12]
        assert pagerank_spec(10).spec_lines == 22   # vs ~800 in [8]


class TestSelection:
    def test_uniform_selects_16p(self, framework):
        batch = ZipfGenerator(alpha=0.0, seed=1).generate(100_000)
        run = framework.choose_offline(batch)
        assert run.implementation.label == "16P"

    def test_extreme_skew_selects_15s(self, framework):
        batch = ZipfGenerator(alpha=3.0, seed=1).generate(100_000)
        run = framework.choose_offline(batch)
        assert run.implementation.label == "16P+15S"

    def test_online_selects_max(self, framework):
        assert framework.choose_online().implementation.label == "16P+15S"


class TestExecution:
    def test_executed_run_is_correct_and_reports_throughput(self, framework):
        batch = ZipfGenerator(alpha=2.0, seed=7).generate(15_000)
        run = framework.run_offline(batch, execute=True)
        golden = framework.kernel.golden(batch.keys, batch.values)
        assert np.array_equal(run.outcome.result, golden)
        assert run.throughput_mtps() > 0

    def test_modelled_run_reports_throughput(self, framework):
        batch = ZipfGenerator(alpha=2.0, seed=7).generate(50_000)
        run = framework.run_offline(batch, execute=False)
        assert run.outcome is None
        assert run.modelled is not None
        assert run.throughput_mtps() > 0

    def test_run_without_execution_raises_on_throughput(self, framework):
        run = framework.choose_online()
        with pytest.raises(ValueError):
            run.throughput_mtps()
