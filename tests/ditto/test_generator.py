"""System generation: Eq. 1 tuning and the implementation set."""


from repro.ditto.generator import SystemGenerator, tune_pe_counts
from repro.ditto.spec import histogram_spec, hyperloglog_spec


class TestEq1:
    def test_papers_parameters_give_8_lanes_16_pripes(self):
        """512-bit interface, 8-byte tuples, II_PrePE=1, II_PE=2:
        N = 8 and M = 16 (§VI-C1)."""
        cfg = tune_pe_counts(histogram_spec())
        assert cfg.lanes == 8
        assert cfg.pripes == 16
        assert cfg.balanced_for_bandwidth()

    def test_wider_tuples_scale_down(self):
        spec = histogram_spec()
        wide = type(spec)(**{**spec.__dict__, "tuple_bytes": 16})
        cfg = tune_pe_counts(wide)
        assert cfg.lanes == 4
        assert cfg.pripes == 8

    def test_ii1_pe_halves_pripes(self):
        spec = histogram_spec()
        fast_pe = type(spec)(**{**spec.__dict__, "ii_pe": 1})
        cfg = tune_pe_counts(fast_pe)
        assert cfg.pripes == 8              # N * II_PE / II_PrePE


class TestImplementationSet:
    def test_full_range_by_default(self):
        gen = SystemGenerator()
        impls = gen.generate(hyperloglog_spec())
        assert len(impls) == 16
        assert [im.config.secpes for im in impls] == list(range(16))

    def test_custom_subset(self):
        gen = SystemGenerator()
        impls = gen.generate(hyperloglog_spec(), secpe_counts=[0, 1, 2, 4, 8, 15])
        assert [im.label for im in impls] == [
            "16P", "16P+1S", "16P+2S", "16P+4S", "16P+8S", "16P+15S"
        ]

    def test_measured_builds_used_for_table3_configs(self):
        gen = SystemGenerator(use_measured_builds=True)
        impls = gen.generate(hyperloglog_spec(), secpe_counts=[0, 15])
        assert impls[0].resources.measured
        assert impls[0].frequency_mhz == 246.0
        assert impls[1].frequency_mhz == 188.0

    def test_structural_mode_never_measured(self):
        gen = SystemGenerator(use_measured_builds=False)
        impls = gen.generate(hyperloglog_spec(), secpe_counts=[0, 15])
        assert not any(im.resources.measured for im in impls)

    def test_bram_monotone_and_capacity_decreasing(self):
        gen = SystemGenerator(use_measured_builds=False)
        impls = gen.generate(hyperloglog_spec())
        rams = [im.resources.ram_blocks for im in impls]
        caps = [im.distinct_capacity_fraction for im in impls]
        assert rams == sorted(rams)
        assert caps == sorted(caps, reverse=True)
        assert caps[-1] > 0.5               # §V-C guarantee

    def test_kernel_built_with_tuned_pripes(self):
        gen = SystemGenerator()
        kernel = gen.build_kernel(histogram_spec(bins=512))
        assert kernel.pripes == 16
