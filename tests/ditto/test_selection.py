"""Implementation selection: offline minimal-BRAM, online maximal,
predictive EWMA extension."""

import pytest

from repro.apps.histo import HistogramKernel
from repro.ditto.generator import SystemGenerator
from repro.ditto.selection import (
    PredictiveOnlineSelector,
    select_offline,
    select_online,
)
from repro.ditto.spec import histogram_spec
from repro.workloads.zipf import ZipfGenerator


@pytest.fixture(scope="module")
def impls():
    return SystemGenerator().generate(histogram_spec(),
                                      secpe_counts=[0, 1, 2, 4, 8, 15])


class TestOffline:
    def test_picks_smallest_covering_x(self, impls):
        assert select_offline(impls, 0).label == "16P"
        assert select_offline(impls, 1).label == "16P+1S"
        assert select_offline(impls, 3).label == "16P+4S"
        assert select_offline(impls, 9).label == "16P+15S"

    def test_falls_back_to_max_when_uncoverable(self, impls):
        subset = [im for im in impls if im.config.secpes <= 4]
        assert select_offline(subset, 12).label == "16P+4S"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_offline([], 0)

    def test_minimal_bram_among_covering(self, impls):
        chosen = select_offline(impls, 2)
        covering = [im for im in impls if im.config.secpes >= 2]
        assert chosen.resources.ram_blocks == min(
            im.resources.ram_blocks for im in covering
        )


class TestOnline:
    def test_picks_maximum(self, impls):
        assert select_online(impls).label == "16P+15S"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_online([])


class TestPredictive:
    def test_validation(self, impls):
        with pytest.raises(ValueError):
            PredictiveOnlineSelector(impls, alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveOnlineSelector(impls, margin=-1)

    def test_starts_conservative_at_max(self, impls):
        selector = PredictiveOnlineSelector(impls)
        assert selector.current.label == "16P+15S"

    def test_steps_down_on_sustained_uniform_traffic(self, impls):
        kernel = HistogramKernel(bins=512, pripes=16)
        selector = PredictiveOnlineSelector(impls, alpha=0.5)
        for seed in range(6):
            segment = ZipfGenerator(alpha=0.0, seed=seed).generate(20_000)
            selector.observe(segment, kernel)
        assert selector.current.config.secpes < 15
        assert selector.predicted_secpes < 4

    def test_steps_up_when_skew_arrives(self, impls):
        kernel = HistogramKernel(bins=512, pripes=16)
        selector = PredictiveOnlineSelector(impls, alpha=0.6)
        for seed in range(4):
            selector.observe(
                ZipfGenerator(alpha=0.0, seed=seed).generate(20_000), kernel)
        low = selector.current.config.secpes
        for seed in range(4):
            selector.observe(
                ZipfGenerator(alpha=3.0, seed=seed).generate(20_000), kernel)
        assert selector.current.config.secpes > low
        assert selector.switches >= 2

    def test_history_records_observations(self, impls):
        kernel = HistogramKernel(bins=512, pripes=16)
        selector = PredictiveOnlineSelector(impls)
        selector.observe(
            ZipfGenerator(alpha=2.0, seed=1).generate(10_000), kernel)
        assert len(selector.history) == 1
