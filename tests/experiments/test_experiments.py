"""Experiment package: registry behaviour and light result checks.

The heavyweight shape assertions live in ``benchmarks/``; these tests
cover the package's API surface with small parameterisations.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.fig2 import run_fig2b
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import format_interval, run_fig9
from repro.experiments.table2 import render_table2, rows_by_key, run_table2
from repro.experiments.table3 import render_table3, run_table3


class TestRegistry:
    def test_all_seven_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2a", "fig2b", "table2", "fig7", "table3", "fig8", "fig9"
        }

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="fig2a"):
            run_experiment("nope")

    def test_run_experiment_renders_text(self):
        text = run_experiment("table3")
        assert "Table III" in text


class TestFig2b:
    def test_endpoints(self):
        result = run_fig2b()
        assert result.mtps[0] == pytest.approx(1968, rel=0.02)
        assert 10 < result.slowdown < 18

    def test_render_contains_all_alphas(self):
        text = run_fig2b().render()
        assert "0.0" in text and "3.0" in text


class TestTable2:
    def test_seven_rows(self):
        rows = run_table2()
        assert len(rows) == 7
        assert set(rows_by_key(rows)) == {
            "jiang_histo", "wang_dp", "kara_dp", "chen_pr", "zhou_pr",
            "kulkarni_hll", "tong_hhd",
        }

    def test_render_lists_every_work(self):
        text = render_table2(run_table2())
        for fragment in ["Jiang", "Wang", "Kara", "Chen", "Zhou",
                         "Kulkami", "Tong"]:
            assert fragment in text


class TestTable3:
    def test_rows_and_render(self):
        rows = run_table3()
        assert [r.label for r in rows] == [
            "16P", "32P", "16P+1S", "16P+2S", "16P+4S", "16P+8S",
            "16P+15S",
        ]
        assert all(r.ram_error < 1.0 for r in rows)
        assert "RAM model error" in render_table3(rows)


class TestFig8:
    def test_small_scale_run(self):
        result = run_fig8(scale_factor=0.1)
        assert len(result.names) == 9
        assert all(s > 0 for s in result.speedups)
        assert "selected SecPEs" in result.render()


class TestFig9:
    def test_interval_formatting(self):
        assert format_interval(512e-3) == "512ms"
        assert format_interval(16e-6) == "16us"
        assert format_interval(64e-9) == "64ns"

    def test_sweep_has_26_points(self):
        result = run_fig9()
        assert len(result.points) == 26
        assert result.baseline_gbps < 10.0
