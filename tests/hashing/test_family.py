"""Pairwise-independent hash family for the count-min sketch."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.family import PairwiseFamily


def test_validation():
    with pytest.raises(ValueError):
        PairwiseFamily(0, 8)
    with pytest.raises(ValueError):
        PairwiseFamily(4, 0)
    fam = PairwiseFamily(2, 8)
    with pytest.raises(IndexError):
        fam.hash(2, 1)
    with pytest.raises(IndexError):
        fam.hash_array(5, np.array([1], dtype=np.uint64))

def test_deterministic_for_seed():
    a = PairwiseFamily(3, 64, seed=7)
    b = PairwiseFamily(3, 64, seed=7)
    c = PairwiseFamily(3, 64, seed=8)
    keys = list(range(50))
    assert [a.hash(1, k) for k in keys] == [b.hash(1, k) for k in keys]
    assert [a.hash(1, k) for k in keys] != [c.hash(1, k) for k in keys]

@given(st.integers(min_value=0, max_value=(1 << 62) - 1),
       st.integers(min_value=0, max_value=3))
def test_property_scalar_vector_agree_and_in_range(key, row):
    fam = PairwiseFamily(4, 97, seed=3)
    scalar = fam.hash(row, key)
    vector = fam.hash_array(row, np.array([key], dtype=np.uint64))
    assert scalar == int(vector[0])
    assert 0 <= scalar < 97

def test_rows_are_distinct_functions():
    fam = PairwiseFamily(4, 1024, seed=1)
    keys = list(range(200))
    rows = [tuple(fam.hash(r, k) for k in keys) for r in range(4)]
    assert len(set(rows)) == 4

def test_all_rows_returns_one_index_per_row():
    fam = PairwiseFamily(5, 128)
    idx = fam.all_rows(123456)
    assert len(idx) == 5
    assert all(0 <= i < 128 for i in idx)

def test_near_uniform_spread():
    fam = PairwiseFamily(1, 16, seed=9)
    cols = fam.hash_array(0, np.arange(16_000, dtype=np.uint64))
    counts = np.bincount(cols, minlength=16)
    assert counts.max() < 1.3 * counts.mean()
