"""Multiply-shift hashing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.multiply_shift import (
    DEFAULT_MULTIPLIER,
    multiply_shift,
    multiply_shift_array,
)


def test_validation():
    with pytest.raises(ValueError):
        multiply_shift(1, 0)
    with pytest.raises(ValueError):
        multiply_shift(1, 64)              # capped at 63 (signed lanes)
    with pytest.raises(ValueError):
        multiply_shift(1, 8, a=2)          # even multiplier
    with pytest.raises(ValueError):
        multiply_shift_array(np.array([1], np.uint64), 8, a=4)

@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=1, max_value=63))
def test_property_scalar_vector_agree_and_in_range(key, bits):
    scalar = multiply_shift(key, bits)
    vector = multiply_shift_array(np.array([key], dtype=np.uint64), bits)
    assert scalar == int(vector[0])
    assert 0 <= scalar < (1 << bits)

def test_distributes_sequential_keys():
    """Sequential keys should spread across buckets (the whole point of
    hashing before binning)."""
    keys = np.arange(4096, dtype=np.uint64)
    bins = multiply_shift_array(keys, 4)
    counts = np.bincount(bins, minlength=16)
    assert counts.min() > 0
    assert counts.max() < 2.0 * counts.mean()

def test_default_multiplier_is_odd():
    assert DEFAULT_MULTIPLIER % 2 == 1
