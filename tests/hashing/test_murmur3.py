"""MurmurHash3: reference vectors, scalar/vector agreement, mixing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.murmur3 import (
    fmix64,
    fmix64_array,
    murmur3_32,
    murmur3_32_array,
)

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestReferenceVectors:
    """Known outputs of the canonical smhasher implementation."""

    @pytest.mark.parametrize("data,seed,expected", [
        (b"", 0, 0),
        (b"", 1, 0x514E28B7),
        (b"hello", 0, 0x248BFA47),
        (b"hello, world", 0, 0x149BBB7F),
        (b"The quick brown fox jumps over the lazy dog", 0, 0x2E4FF723),
        (b"\xff\xff\xff\xff", 0, 0x76293B50),
        (b"!Ce\x87", 0, 0xF55B516B),  # bytes 0x21436587
    ])
    def test_known_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_int_key_hashes_as_8_le_bytes(self):
        key = 0x0123456789ABCDEF
        assert murmur3_32(key) == murmur3_32(key.to_bytes(8, "little"))


class TestVectorisedAgreement:
    @given(st.lists(U64, min_size=1, max_size=64))
    def test_murmur_array_matches_scalar(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        vec = murmur3_32_array(arr)
        for key, value in zip(keys, vec):
            assert murmur3_32(key) == int(value)

    @given(st.lists(U64, min_size=1, max_size=64))
    def test_fmix_array_matches_scalar(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        vec = fmix64_array(arr)
        for key, value in zip(keys, vec):
            assert fmix64(key) == int(value)


class TestMixingProperties:
    @given(U64, U64)
    def test_fmix64_is_injective_on_samples(self, a, b):
        """fmix64 is a bijection on 64-bit ints: distinct inputs give
        distinct outputs."""
        if a != b:
            assert fmix64(a) != fmix64(b)

    def test_fmix64_avalanche(self):
        """Flipping one input bit flips ~half the output bits."""
        rng = np.random.default_rng(0)
        flips = []
        for _ in range(200):
            x = int(rng.integers(0, 1 << 63))
            bit = int(rng.integers(0, 64))
            diff = fmix64(x) ^ fmix64(x ^ (1 << bit))
            flips.append(bin(diff).count("1"))
        assert 24 < np.mean(flips) < 40

    def test_output_range(self):
        assert 0 <= murmur3_32(b"anything") < (1 << 32)
        assert 0 <= fmix64((1 << 64) - 1) < (1 << 64)
