"""Radix-bit extraction."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hashing.radix import radix_bits, radix_bits_array


def test_basic_extraction():
    assert radix_bits(0b101100, 3, shift=2) == 0b011
    assert radix_bits(0xFF, 4) == 0xF
    assert radix_bits(0x10, 4) == 0

def test_rejects_bad_args():
    with pytest.raises(ValueError):
        radix_bits(1, 0)
    with pytest.raises(ValueError):
        radix_bits(1, 4, shift=-1)
    with pytest.raises(ValueError):
        radix_bits_array(np.array([1], dtype=np.uint64), 0)

@given(st.integers(min_value=0, max_value=(1 << 63) - 1),
       st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=32))
def test_property_scalar_vector_agree_and_in_range(key, bits, shift):
    scalar = radix_bits(key, bits, shift)
    vector = radix_bits_array(np.array([key], dtype=np.uint64), bits, shift)
    assert scalar == int(vector[0])
    assert 0 <= scalar < (1 << bits)

@given(st.integers(min_value=1, max_value=12))
def test_property_partition_is_exhaustive(bits):
    """Every key maps to exactly one of the 2^bits partitions and all
    partitions are reachable."""
    keys = np.arange(1 << bits, dtype=np.uint64)
    parts = radix_bits_array(keys, bits)
    assert sorted(parts.tolist()) == list(range(1 << bits))
