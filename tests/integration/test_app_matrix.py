"""Cross-application integration matrix.

Every application, through the full cycle-level pipeline, across skew
levels and SecPE counts — including the rescheduling path — must produce
results identical (or, for sketches, equivalent) to its golden
reference.  This is the repository's broadest correctness net.
"""

import numpy as np
import pytest

from repro.apps.heavy_hitter import HeavyHitterKernel
from repro.apps.histo import HistogramKernel
from repro.apps.hyperloglog import HyperLogLogKernel
from repro.apps.partition import PartitionKernel
from repro.core.architecture import SkewObliviousArchitecture
from repro.core.config import ArchitectureConfig
from repro.workloads.zipf import ZipfGenerator


def run(kernel, batch, secpes, threshold=0.0, **kwargs):
    config = ArchitectureConfig(secpes=secpes,
                                reschedule_threshold=threshold, **kwargs)
    arch = SkewObliviousArchitecture(config, kernel)
    return arch.run(batch, max_cycles=20_000_000)


@pytest.mark.parametrize("alpha", [0.0, 2.0, 3.0])
@pytest.mark.parametrize("secpes", [0, 8])
class TestMatrix:
    def _batch(self, alpha, n=8_000):
        return ZipfGenerator(alpha=alpha, seed=88).generate(n)

    def test_histogram(self, alpha, secpes):
        kernel = HistogramKernel(bins=512, pripes=16)
        batch = self._batch(alpha)
        outcome = run(kernel, batch, secpes)
        assert np.array_equal(outcome.result,
                              kernel.golden(batch.keys, batch.values))

    def test_hyperloglog(self, alpha, secpes):
        kernel = HyperLogLogKernel(precision=10, pripes=16)
        batch = self._batch(alpha)
        outcome = run(kernel, batch, secpes)
        assert np.array_equal(outcome.result,
                              kernel.golden(batch.keys, batch.values))

    def test_partition(self, alpha, secpes):
        kernel = PartitionKernel(radix_bits_count=6, pripes=16)
        batch = self._batch(alpha, n=4_000)
        outcome = run(kernel, batch, secpes)
        golden = kernel.golden(batch.keys, batch.values)
        assert set(outcome.result) == set(golden)
        for part in golden:
            assert sorted(outcome.result[part]) == sorted(golden[part])

    def test_heavy_hitter(self, alpha, secpes):
        kernel = HeavyHitterKernel(depth=4, width=1024, threshold=200,
                                   pripes=16)
        batch = self._batch(alpha, n=6_000)
        outcome = run(kernel, batch, secpes)
        golden = kernel.golden(batch.keys, batch.values)
        # Same sketch construction on both paths: when no SecPEs split
        # the counts mid-stream, detection matches exactly; with SecPEs
        # the merged sketch is identical, so estimates match for every
        # detected key.
        for key, estimate in outcome.result.items():
            assert key in golden
            assert estimate == golden[key]


class TestMatrixWithRescheduling:
    """The same correctness under an actively rescheduling profiler."""

    @pytest.mark.parametrize("app", ["histo", "hll"])
    def test_two_phase_stream(self, app):
        a = ZipfGenerator(alpha=3.0, seed=1).generate(8_000)
        b = ZipfGenerator(alpha=3.0, seed=999).generate(8_000)
        batch = a.concat(b)
        if app == "histo":
            kernel = HistogramKernel(bins=512, pripes=16)
        else:
            kernel = HyperLogLogKernel(precision=10, pripes=16)
        outcome = run(kernel, batch, secpes=15, threshold=0.6,
                      monitor_window=512, reenqueue_delay_cycles=256)
        assert np.array_equal(outcome.result,
                              kernel.golden(batch.keys, batch.values))
