"""The analytic models must agree with the cycle-level engine.

This is what licenses running the paper-scale benchmarks on the models:
across applications, skew levels and SecPE counts, the epoch model's
throughput tracks the cycle simulator within a bounded relative error,
and — more importantly — preserves every *ordering* the paper's
conclusions rest on.
"""

import pytest

from repro.apps.histo import HistogramKernel
from repro.apps.hyperloglog import HyperLogLogKernel
from repro.core.config import ArchitectureConfig
from repro.perf.validate import compare_cycle_vs_model
from repro.workloads.zipf import ZipfGenerator


def batch_for(alpha, n=30_000, seed=5):
    return ZipfGenerator(alpha=alpha, seed=seed).generate(n)


@pytest.mark.parametrize("alpha,secpes,tolerance", [
    (0.0, 0, 0.15),
    (1.5, 0, 0.10),
    (3.0, 0, 0.10),
    (3.0, 4, 0.20),
    (3.0, 15, 0.25),
])
def test_histo_model_tracks_cycle_engine(alpha, secpes, tolerance):
    kernel = HistogramKernel(bins=512, pripes=16)
    config = ArchitectureConfig(secpes=secpes, reschedule_threshold=0.0)
    point = compare_cycle_vs_model(kernel, batch_for(alpha), config)
    assert point.relative_error < tolerance, (
        f"{point.label} @ alpha={alpha}: cycle={point.cycle_tpc:.3f} "
        f"model={point.model_tpc:.3f}"
    )


def test_hll_model_tracks_cycle_engine():
    kernel = HyperLogLogKernel(precision=10, pripes=16)
    config = ArchitectureConfig(secpes=8, reschedule_threshold=0.0)
    point = compare_cycle_vs_model(kernel, batch_for(2.0), config)
    assert point.relative_error < 0.25


def test_model_preserves_the_secpe_ordering():
    """The Fig. 7 conclusion (more SecPEs -> more skew robustness) must
    hold identically in both engines."""
    kernel = HistogramKernel(bins=512, pripes=16)
    batch = batch_for(3.0)
    cycle_rates, model_rates = [], []
    for secpes in [0, 2, 8, 15]:
        config = ArchitectureConfig(secpes=secpes, reschedule_threshold=0.0)
        point = compare_cycle_vs_model(kernel, batch, config)
        cycle_rates.append(point.cycle_tpc)
        model_rates.append(point.model_tpc)
    assert cycle_rates == sorted(cycle_rates)
    assert model_rates == sorted(model_rates)


def test_model_preserves_the_skew_ordering():
    """Fig. 2b's conclusion: throughput decreases with alpha, in both
    engines, by a comparable overall factor."""
    kernel = HistogramKernel(bins=512, pripes=16)
    config = ArchitectureConfig(reschedule_threshold=0.0)
    cycle_rates, model_rates = [], []
    for alpha in [0.0, 1.0, 2.0, 3.0]:
        point = compare_cycle_vs_model(kernel, batch_for(alpha), config)
        cycle_rates.append(point.cycle_tpc)
        model_rates.append(point.model_tpc)
    assert cycle_rates == sorted(cycle_rates, reverse=True)
    assert model_rates == sorted(model_rates, reverse=True)
    cycle_collapse = cycle_rates[0] / cycle_rates[-1]
    model_collapse = model_rates[0] / model_rates[-1]
    assert cycle_collapse == pytest.approx(model_collapse, rel=0.3)
