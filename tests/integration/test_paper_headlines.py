"""The paper's headline numbers, asserted end to end.

Each test reproduces one quantitative claim from the abstract or the
evaluation text using this repository's own pipeline (not the paper's
constants), and checks it lands in the claimed ballpark.
"""

import pytest

from repro.analysis import paper_data
from repro.apps.histo import HistogramKernel
from repro.core.architecture import SkewObliviousArchitecture
from repro.core.config import ArchitectureConfig
from repro.ditto.framework import DittoFramework
from repro.ditto.spec import histogram_spec, hyperloglog_spec
from repro.perf.epoch import EpochModel
from repro.perf.steady import steady_throughput_mtps
from repro.workloads.zipf import ZipfGenerator


def shares_for(alpha, seed=3):
    return ZipfGenerator(alpha=alpha, seed=seed).expected_shares(
        destinations=16)


class TestOneSixteenth:
    """§II: 'The performance of the extreme skew dataset (alpha = 3) has
    slowed down to one-sixteenth of that of the uniform dataset'."""

    def test_steady_state(self):
        uniform = steady_throughput_mtps(shares_for(0.0), 246.0)
        extreme = steady_throughput_mtps(shares_for(3.0), 246.0)
        assert uniform / extreme == pytest.approx(13.3, abs=1.5)

    def test_cycle_level(self):
        kernel = HistogramKernel(bins=512, pripes=16)
        config = ArchitectureConfig(reschedule_threshold=0.0)
        outcomes = {}
        for alpha in (0.0, 3.0):
            batch = ZipfGenerator(alpha=alpha, seed=9).generate(20_000)
            arch = SkewObliviousArchitecture(config, kernel)
            outcomes[alpha] = arch.run(batch).tuples_per_cycle
        assert 10.0 < outcomes[0.0] / outcomes[3.0] < 18.0


class TestTwelveX:
    """Abstract: 'outperforms baseline by 12x on skew datasets' —
    16 x rate recovery x (188 MHz / 246 MHz) ~ 12."""

    def test_modelled_speedup_at_alpha3(self):
        shares = shares_for(3.0)
        base = steady_throughput_mtps(shares, 246.0, secpes=0)
        helped = steady_throughput_mtps(shares, 188.0, secpes=15)
        speedup = helped / base
        assert speedup == pytest.approx(paper_data.FIG7_MAX_SPEEDUP,
                                        abs=2.0)


class TestUniformBandwidth:
    """Fig. 2b: ~2000 MT/s on uniform data (8 t/c x 246 MHz)."""

    def test_uniform_histo_throughput(self):
        value = steady_throughput_mtps(shares_for(0.0), 246.0)
        assert value == pytest.approx(paper_data.FIG2B_UNIFORM_MTPS,
                                      rel=0.05)


class TestDittoSelectionNeverCompromises:
    """§VI-C1: 'Ditto could select a suitable implementation that
    minimizes the BRAM usage without compromising performance.'"""

    def test_selected_impl_within_tolerance_of_best(self):
        framework = DittoFramework(hyperloglog_spec(precision=12),
                                   secpe_counts=[0, 1, 2, 4, 8, 15])
        best = max(framework.implementations,
                   key=lambda im: im.config.secpes)
        for alpha in [0.0, 1.0, 2.0, 3.0]:
            batch = ZipfGenerator(alpha=alpha, seed=4).generate(150_000)
            run = framework.choose_offline(batch)
            route = framework.kernel.route_array(batch.keys)
            chosen_rate = EpochModel(
                run.implementation.config.with_secpes(
                    run.implementation.config.secpes)
            ).run(route).throughput_mtps(run.implementation.frequency_mhz)
            best_rate = EpochModel(best.config).run(route).throughput_mtps(
                best.frequency_mhz)
            # Chosen impl must be within 25% of the max-SecPE build (the
            # clock spread between builds is itself ~20%).
            assert chosen_rate > 0.75 * best_rate
            # And never larger BRAM than the maximal build.
            assert (run.implementation.resources.ram_blocks
                    <= best.resources.ram_blocks)


class TestProductivity:
    """§VI-B: 'PR from Chen et al. and HISTO from Jiang et al. have
    around 800 and 200 lines ... Ditto requires only 22 and 6.'"""

    def test_spec_line_claims(self):
        pr_existing, pr_ditto = paper_data.CODE_LINES["PR"]
        histo_existing, histo_ditto = paper_data.CODE_LINES["HISTO"]
        assert pr_existing / pr_ditto > 30
        assert histo_existing / histo_ditto > 30
        assert histogram_spec().spec_lines == histo_ditto
