"""Known-bad fixture for the determinism rule (never imported).

Only flagged when the lint config lists this module as deterministic —
the tests pass ``LintConfig(deterministic_modules=("bad_determinism",))``.
"""

import datetime
import random
import time

import numpy as np


def stamp():
    return time.time()


def deadline(timeout):
    return time.monotonic() + timeout


def label():
    return datetime.datetime.now().isoformat()


def jitter():
    return random.random()


def rng():
    return np.random.default_rng()
