"""Known-bad fixture for the guarded-by rule (never imported)."""

import threading


class Counter:
    """Declared guards violated: reads outside the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.hits += 1

    def rate(self):
        # Torn read: hits and misses loaded in two unlocked reads.
        return self.hits / ((self.hits + self.misses) or 1)


class Inferred:
    """No declaration, but 3/4 accesses are locked -> inferred guard."""

    def __init__(self):
        self._lock = threading.Lock()
        self.depth = 0

    def grow(self):
        with self._lock:
            self.depth += 1

    def shrink(self):
        with self._lock:
            self.depth -= 1

    def drain(self):
        with self._lock:
            return self.depth

    def peek(self):
        return self.depth
