"""Known-bad fixture for the hot-path rule (never imported)."""

import copy
import pickle

import numpy as np


def send(shard):  # hot-path
    payload = pickle.dumps(shard)
    return payload


# hot-path
def merge(parts):
    joined = np.concatenate(parts)
    return joined.tobytes()


def snapshot(state):  # hot-path
    return copy.deepcopy(state)
