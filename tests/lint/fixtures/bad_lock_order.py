"""Known-bad fixture for the lock-order rule (never imported)."""

import threading


class Pair:
    """The classic AB/BA deadlock: two locks, two orders."""

    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def ab(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def ba(self):
        with self._b_lock:
            with self._a_lock:
                pass


class Reacquire:
    """Non-reentrant lock re-acquired through a same-class call."""

    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            pass
