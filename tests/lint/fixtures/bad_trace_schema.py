"""Known-bad fixture for the trace-schema rule (never imported)."""

from repro.obs import events
from repro.obs.events import TraceEvent


def misspelled(tracer):
    tracer.emit("job.sumbit", 0)


def unknown_constant():
    return events.JOB_TELEPORT


def direct_event():
    return TraceEvent(kind="gateway.warp", clock=0)
