"""Known-good fixture for the determinism rule (never imported)."""

import random

import numpy as np

from repro import wallclock


def seeded_numpy():
    return np.random.default_rng(7).integers(0, 10)


def seeded_stdlib():
    return random.Random(3).random()


def wall_stamp():
    # Host time through the vetted shim is the sanctioned route.
    return wallclock.now()


def wait_deadline(timeout):
    return wallclock.monotonic() + timeout
