"""Known-good fixture for the guarded-by rule (never imported)."""

import threading


class Counter:
    """Every guarded access holds the lock (incl. via a Condition
    wrapping it and a ``# guarded-by`` def annotation)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self.hits += 1

    def wait_bump(self):
        # Holding the Condition counts as holding the wrapped lock.
        with self._not_empty:
            self.misses += 1

    def rate(self):
        with self._lock:
            return self._rate_locked()

    def _rate_locked(self):
        return self.hits / ((self.hits + self.misses) or 1)

    def helper(self):  # guarded-by: _lock
        return self.hits
