"""Known-good fixture for the hot-path rule (never imported)."""

import numpy as np


def views(buf, count):  # hot-path
    # Zero-copy: frombuffer aliases the backing memory.
    return np.frombuffer(buf, dtype=np.int64, count=count)


def cold(parts):
    # Copies are fine outside # hot-path functions.
    return np.concatenate(parts).tobytes()
