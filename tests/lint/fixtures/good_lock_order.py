"""Known-good fixture for the lock-order rule (never imported)."""

import threading


class Pair:
    """Two locks, one consistent order on every path."""

    def __init__(self):
        self._a_lock = threading.Lock()
        self._b_lock = threading.Lock()

    def ab(self):
        with self._a_lock:
            with self._b_lock:
                pass

    def also_ab(self):
        with self._a_lock:
            with self._b_lock:
                pass


class ReentrantReacquire:
    """RLock re-acquisition is legal and must not be flagged."""

    def __init__(self):
        self._lock = threading.RLock()

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            pass


class LockedConvention:
    """Callers of ``*_locked`` helpers already hold the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.depth = 0

    def grow(self):
        with self._lock:
            self._grow_locked()

    def _grow_locked(self):
        self.depth += 1
