"""Known-good fixture for the trace-schema rule (never imported)."""

from repro.obs import events
from repro.obs.events import TraceEvent


def by_constant(tracer):
    tracer.emit(events.JOB_SUBMIT, 0)


def by_literal(tracer):
    tracer.emit("backend.shard.retry", 1)


def direct_event():
    return TraceEvent(kind=events.GATEWAY_BATCH, clock=0)


def prefix_filter(tracer):
    # Consumer-side prefix filters are out of scope by design.
    return tracer.events(kind="job.")
