"""Fixture: real violations silenced by pragmas (never imported)."""

import pickle


def deliberate_copy(shard):  # hot-path
    # The counted pipe-fallback idiom: visible, reviewed, suppressed.
    return pickle.dumps(shard)  # lint: disable=hot-path


def whole_body(shard):  # hot-path, lint: disable=hot-path
    return pickle.dumps(shard)
