"""The ``repro lint`` subcommand: exit codes and output formats."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestExitCodes:
    def test_clean_path_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "good_hot_path.py")]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s) in 1 file(s)" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "bad_hot_path.py")]) == 1
        out = capsys.readouterr().out
        assert "[hot-path]" in out
        assert "4 finding(s)" in out

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", str(FIXTURES), "--rule", "no-such-rule"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule 'no-such-rule'" in err
        assert "guarded-by" in err  # the known-rules listing

    def test_suppressed_findings_counted_not_fatal(self, capsys):
        path = str(FIXTURES / "pragma_suppressed.py")
        assert main(["lint", path]) == 0
        assert "2 suppressed by pragma" in capsys.readouterr().out


class TestRuleSelection:
    def test_single_rule_filter(self, capsys):
        path = str(FIXTURES / "bad_guarded.py")
        assert main(["lint", path, "--rule", "hot-path"]) == 0
        capsys.readouterr()
        assert main(["lint", path, "--rule", "guarded-by"]) == 1

    def test_repeated_rule_flags(self, capsys):
        path = str(FIXTURES / "bad_lock_order.py")
        code = main(["lint", path, "--rule", "lock-order",
                     "--rule", "hot-path"])
        assert code == 1
        out = capsys.readouterr().out
        assert "[lock-order]" in out


class TestJsonFormat:
    def test_json_report_shape(self, capsys):
        path = str(FIXTURES / "bad_trace_schema.py")
        assert main(["lint", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert len(payload["findings"]) == 3
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col",
                                "message"}
        assert finding["rule"] == "trace-schema"

    def test_json_clean_report(self, capsys):
        path = str(FIXTURES / "good_trace_schema.py")
        assert main(["lint", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
