"""Unit tests for the rule-agnostic lint machinery."""

import textwrap
from pathlib import Path

from repro.lint import Finding, load_project
from repro.lint.framework import (
    SourceFile,
    module_name_for,
)


def parse(text, module="mem", name="mem.py"):
    return SourceFile(Path(name), textwrap.dedent(text), module=module)


class TestModuleNameFor:
    def test_src_layout(self):
        assert module_name_for(
            Path("src/repro/service/server.py")) == "repro.service.server"

    def test_src_layout_package_init(self):
        assert module_name_for(
            Path("/root/repo/src/repro/lint/__init__.py")) == "repro.lint"

    def test_repro_anchored_without_src(self):
        assert module_name_for(
            Path("repro/obs/events.py")) == "repro.obs.events"

    def test_bare_file_uses_basename(self):
        assert module_name_for(
            Path("tests/lint/fixtures/bad_hot_path.py")) == "bad_hot_path"


class TestImportMap:
    def test_aliases_and_from_imports(self):
        src = parse("""
            import numpy as np
            import pickle
            from time import monotonic
            from copy import deepcopy as dc
        """)
        assert src.imports.resolve("np.concatenate") == \
            "numpy.concatenate"
        assert src.imports.resolve("pickle.dumps") == "pickle.dumps"
        assert src.imports.resolve("monotonic") == "time.monotonic"
        assert src.imports.resolve("dc") == "copy.deepcopy"

    def test_relative_import(self):
        src = parse("from . import events",
                    module="repro.obs.collector")
        assert src.imports.resolve("events.JOB_SUBMIT") == \
            "repro.obs.events.JOB_SUBMIT"

    def test_unknown_name_is_identity(self):
        src = parse("x = 1")
        assert src.imports.resolve("mystery.call") == "mystery.call"


class TestAnnotations:
    def test_line_pragma(self):
        src = parse("""
            x = 1  # lint: disable=hot-path
            y = 2  # lint: disable=guarded-by, lock-order
            z = 3  # lint: disable=all
        """)
        assert src.suppressed("hot-path", 2)
        assert not src.suppressed("guarded-by", 2)
        assert src.suppressed("guarded-by", 3)
        assert src.suppressed("lock-order", 3)
        assert src.suppressed("determinism", 4)

    def test_scope_pragma_covers_body(self):
        src = parse("""
            def f():  # lint: disable=hot-path
                a = 1
                return a

            def g():
                return 2
        """)
        assert src.suppressed("hot-path", 3)
        assert src.suppressed("hot-path", 4)
        assert not src.suppressed("hot-path", 7)

    def test_guard_and_hot_markers(self):
        src = parse("""
            class C:
                def __init__(self):
                    self.x = 0  # guarded-by: _lock

            def f():  # hot-path
                pass
        """)
        assert src.guards[4] == "_lock"
        assert 6 in src.hot_lines

    def test_markers_in_strings_are_ignored(self):
        # tokenize-based extraction: the same text inside a string
        # literal (e.g. the linter's own regexes) must not count.
        src = parse('''
            PATTERN = "lint: disable=all"
            DOC = """# hot-path and # guarded-by: _lock"""
        ''')
        assert not src.pragmas
        assert not src.guards
        assert not src.hot_lines

    def test_is_hot_line_above(self):
        src = parse("""
            # hot-path
            def f():
                pass
        """)
        func = src.tree.body[0]
        assert src.is_hot(func)


class TestLockModel:
    def test_lock_kinds_and_condition_alias(self):
        src = parse("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rl = threading.RLock()
                    self._cond = threading.Condition(self._lock)
                    self._free = threading.Condition()
        """)
        (cls,) = src.classes()
        assert cls.locks["_lock"] == "lock"
        assert cls.locks["_rl"] == "reentrant"
        # Condition(self._lock) aliases the wrapped lock...
        assert cls.canonical("_cond") == "_lock"
        # ...while a bare Condition() is its own reentrant lock.
        assert cls.locks["_free"] == "reentrant"

    def test_dataclass_field_lock(self):
        src = parse("""
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class M:
                count: int = 0  # guarded-by: _lock
                _lock: threading.Lock = field(
                    default_factory=threading.Lock)
        """)
        (cls,) = src.classes()
        assert cls.locks["_lock"] == "lock"
        assert cls.declared["count"] == "_lock"

    def test_locked_suffix_and_def_guard(self):
        src = parse("""
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def _helper_locked(self):
                    pass

                def helper(self):  # guarded-by: _lock
                    pass
        """)
        (cls,) = src.classes()
        assert [r.attr for r in cls.entry_refs("_helper_locked")] == \
            ["_lock"]
        assert [r.attr for r in cls.entry_refs("helper")] == ["_lock"]
        assert cls.entry_refs("__init__") == ()


class TestProjectLoading:
    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        project = load_project([bad])
        assert not project.files
        assert len(project.broken) == 1
        assert project.broken[0].rule == "parse"

    def test_duplicate_paths_deduplicated(self, tmp_path):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n", encoding="utf-8")
        project = load_project([mod, mod, tmp_path])
        assert len(project.files) == 1


class TestFinding:
    def test_render_and_dict(self):
        finding = Finding(path="a.py", line=3, col=7, rule="hot-path",
                          message="no copies")
        assert finding.render() == "a.py:3:7: [hot-path] no copies"
        assert finding.to_dict() == {
            "rule": "hot-path", "path": "a.py", "line": 3, "col": 7,
            "message": "no copies",
        }
