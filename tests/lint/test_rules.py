"""Each lint rule fires on its known-bad fixture and stays quiet on
the known-good one; pragmas suppress without hiding."""

from pathlib import Path

from repro.lint import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"

#: Fixture modules are named after their file (no src/ layout), so the
#: determinism rule needs a config that marks them clock-path modules.
DET_CONFIG = LintConfig(
    deterministic_modules=("bad_determinism", "good_determinism"))


def lint_fixture(name, rules=None, config=None):
    return run_lint([str(FIXTURES / name)], rule_names=rules,
                    config=config)


class TestGuardedBy:
    def test_bad_fixture_fires(self):
        report = lint_fixture("bad_guarded.py", rules=["guarded-by"])
        assert not report.clean
        messages = [f.message for f in report.findings]
        # Declared guard: three unlocked loads in Counter.rate.
        declared = [m for m in messages if "Counter.hits" in m
                    or "Counter.misses" in m]
        assert len(declared) == 3
        assert all("guarded-by _lock" in m for m in declared)
        # Inferred guard: the single unlocked Inferred.peek read.
        inferred = [m for m in messages if "Inferred.depth" in m]
        assert len(inferred) == 1
        assert "3/4" in inferred[0]

    def test_good_fixture_clean(self):
        report = lint_fixture("good_guarded.py", rules=["guarded-by"])
        assert report.clean, [f.render() for f in report.findings]

    def test_condition_alias_counts_as_lock(self):
        # good_guarded's wait_bump touches `misses` holding only the
        # Condition(self._lock); a clean report proves the alias works.
        report = lint_fixture("good_guarded.py", rules=["guarded-by"])
        assert report.clean


class TestLockOrder:
    def test_bad_fixture_fires(self):
        report = lint_fixture("bad_lock_order.py", rules=["lock-order"])
        messages = [f.message for f in report.findings]
        cycles = [m for m in messages if "lock-order cycle" in m]
        assert len(cycles) == 1
        assert "Pair._a_lock" in cycles[0]
        assert "Pair._b_lock" in cycles[0]
        reacq = [m for m in messages if "re-acquisition" in m]
        assert len(reacq) == 1
        assert "Reacquire._lock" in reacq[0]
        assert "single-thread deadlock" in reacq[0]

    def test_good_fixture_clean(self):
        report = lint_fixture("good_lock_order.py",
                              rules=["lock-order"])
        assert report.clean, [f.render() for f in report.findings]


class TestDeterminism:
    def test_bad_fixture_fires(self):
        report = lint_fixture("bad_determinism.py",
                              rules=["determinism"], config=DET_CONFIG)
        messages = [f.message for f in report.findings]
        assert len(messages) == 5
        joined = "\n".join(messages)
        assert "time.time()" in joined
        assert "time.monotonic()" in joined
        assert "datetime.datetime.now()" in joined
        assert "random.random()" in joined
        assert "unseeded numpy.random.default_rng()" in joined

    def test_good_fixture_clean(self):
        report = lint_fixture("good_determinism.py",
                              rules=["determinism"], config=DET_CONFIG)
        assert report.clean, [f.render() for f in report.findings]

    def test_module_off_the_clock_path_not_checked(self):
        # Default config does not list the fixture module: no findings
        # even though it calls time.time().
        report = lint_fixture("bad_determinism.py",
                              rules=["determinism"])
        assert report.clean


class TestHotPath:
    def test_bad_fixture_fires(self):
        report = lint_fixture("bad_hot_path.py", rules=["hot-path"])
        messages = [f.message for f in report.findings]
        assert len(messages) == 4
        joined = "\n".join(messages)
        assert "pickle.dumps()" in joined
        assert "numpy.concatenate()" in joined
        assert ".tobytes()" in joined
        assert "copy.deepcopy()" in joined

    def test_good_fixture_clean(self):
        report = lint_fixture("good_hot_path.py", rules=["hot-path"])
        assert report.clean, [f.render() for f in report.findings]

    def test_marker_on_line_above_def_counts(self):
        # bad_hot_path's `merge` is marked by a comment line above the
        # def; its two findings prove the marker attached.
        report = lint_fixture("bad_hot_path.py", rules=["hot-path"])
        merge_lines = [f for f in report.findings
                       if "concatenate" in f.message
                       or "tobytes" in f.message]
        assert len(merge_lines) == 2


class TestTraceSchema:
    def test_bad_fixture_fires(self):
        report = lint_fixture("bad_trace_schema.py",
                              rules=["trace-schema"])
        messages = [f.message for f in report.findings]
        assert len(messages) == 3
        joined = "\n".join(messages)
        assert "'job.sumbit'" in joined
        assert "'JOB_TELEPORT'" in joined
        assert "'gateway.warp'" in joined

    def test_good_fixture_clean(self):
        report = lint_fixture("good_trace_schema.py",
                              rules=["trace-schema"])
        assert report.clean, [f.render() for f in report.findings]


class TestPragmas:
    def test_line_and_scope_pragmas_suppress(self):
        report = lint_fixture("pragma_suppressed.py",
                              rules=["hot-path"])
        assert report.clean
        # Suppressed findings stay visible in the report, not hidden.
        assert len(report.suppressed) == 2
        assert all(f.rule == "hot-path" for f in report.suppressed)

    def test_unrelated_rule_not_suppressed(self):
        # A hot-path pragma must not blanket other rules: rerunning
        # the bad guarded fixture with every rule still reports.
        report = lint_fixture("bad_guarded.py")
        assert any(f.rule == "guarded-by" for f in report.findings)


class TestRunLint:
    def test_unknown_rule_raises(self):
        import pytest

        with pytest.raises(KeyError):
            run_lint([str(FIXTURES)], rule_names=["no-such-rule"])

    def test_directory_scan_covers_all_fixtures(self):
        report = run_lint([str(FIXTURES)], config=DET_CONFIG)
        assert report.files >= 10
        fired = {f.rule for f in report.findings}
        assert {"guarded-by", "lock-order", "determinism", "hot-path",
                "trace-schema"} <= fired
