"""The merged tree must satisfy its own invariants.

This is the test CI's ``lint-quick`` job mirrors: every rule, over all
of ``src/repro``, with zero findings.  A change that introduces an
unlocked guarded access, a raw clock call on the dispatch path, a copy
in a hot function, or an unregistered trace kind fails here first.
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture(scope="module")
def report():
    return run_lint([str(SRC)])


def test_src_tree_is_violation_free(report):
    assert report.clean, "lint findings in src/repro:\n" + "\n".join(
        f.render() for f in report.findings)


def test_whole_tree_was_scanned(report):
    # Guard against the check silently passing on an empty scan.
    assert report.files > 100


def test_suppressions_are_deliberate_hot_path_copies_only(report):
    # The only sanctioned pragmas are the procpool pipe fallback's two
    # counted copies; anything else must be fixed, not silenced.
    assert {f.rule for f in report.suppressed} <= {"hot-path"}
    assert len(report.suppressed) <= 4, [
        f.render() for f in report.suppressed]
