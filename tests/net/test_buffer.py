"""IngestBuffer: FIFO order, close/abort semantics, blocking consume."""

import threading
import time

import numpy as np
import pytest

from repro.net import IngestBuffer
from repro.workloads.streams import timestamp_batch
from repro.workloads.tuples import TupleBatch


def batch_of(*keys):
    return timestamp_batch(TupleBatch.from_keys(
        np.asarray(keys, dtype=np.uint64)))


class TestIngestBuffer:
    def test_fifo_order_and_close_ends_iteration(self):
        buffer = IngestBuffer()
        first, second = batch_of(1, 2), batch_of(3)
        buffer.put(first)
        buffer.put(second)
        buffer.close()
        drained = list(buffer)
        assert [d.batch.keys.tolist() for d in drained] == [[1, 2], [3]]

    def test_put_after_close_raises(self):
        buffer = IngestBuffer()
        buffer.close()
        with pytest.raises(RuntimeError):
            buffer.put(batch_of(1))

    def test_abort_poisons_consumer_even_with_items_buffered(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        buffer.abort("connection lost")
        with pytest.raises(RuntimeError, match="connection lost"):
            next(iter(buffer))

    def test_consumer_blocks_until_producer_puts(self):
        buffer = IngestBuffer()
        got = []

        def consume():
            got.append(next(iter(buffer)))

        thread = threading.Thread(target=consume)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive()  # blocked, nothing buffered yet
        buffer.put(batch_of(9))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got[0].batch.keys.tolist() == [9]

    def test_depth_and_counters(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1, 2, 3))
        buffer.put(batch_of(4))
        assert buffer.depth() == 2
        assert buffer.depth_peak == 2
        assert buffer.batches_in == 2
        assert buffer.tuples_in == 4
        next(iter(buffer))
        assert buffer.depth() == 1
        assert buffer.depth_peak == 2  # peak is sticky

    def test_on_drain_fires_per_consumed_batch(self):
        drains = []
        buffer = IngestBuffer(on_drain=lambda: drains.append(1))
        buffer.put(batch_of(1))
        buffer.put(batch_of(2))
        buffer.close()
        list(buffer)
        assert len(drains) == 2

    def test_idle_timeout_poisons_a_silent_stream(self):
        buffer = IngestBuffer(idle_timeout=0.05)
        with pytest.raises(RuntimeError, match="idle"):
            next(iter(buffer))

    def test_idle_timeout_restarts_per_consumed_batch(self):
        buffer = IngestBuffer(idle_timeout=10.0)
        buffer.put(batch_of(1))
        # Data available: returns immediately, no timeout involved.
        assert next(iter(buffer)).batch.keys.tolist() == [1]

    def test_idle_timeout_validated(self):
        with pytest.raises(ValueError):
            IngestBuffer(idle_timeout=0)

    def test_drained_only_after_close_and_empty(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        assert not buffer.drained()
        buffer.close()
        assert not buffer.drained()  # one batch still buffered
        list(buffer)
        assert buffer.drained()

    def test_abort_drops_undelivered_batches(self):
        """A lost connection must release the tenant's credits: the
        aborted stream reports depth 0 and counts as drained, so the
        gateway's high-water accounting forgets it."""
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        buffer.put(batch_of(2))
        buffer.abort("connection lost")
        assert buffer.depth() == 0
        assert buffer.drained()
        with pytest.raises(RuntimeError, match="connection lost"):
            next(iter(buffer))


class TestPollReady:
    def test_empty_open_stream_is_not_ready(self):
        buffer = IngestBuffer()
        assert not buffer.poll_ready()

    def test_ready_with_data_close_or_abort(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        assert buffer.poll_ready()
        next(iter(buffer))
        assert not buffer.poll_ready()  # drained, still open
        buffer.close()
        assert buffer.poll_ready()  # next() raises StopIteration
        aborted = IngestBuffer()
        aborted.abort("gone")
        assert aborted.poll_ready()  # next() raises immediately

    def test_idle_expiry_aborts_through_the_probe(self):
        """The dispatcher never blocks: an empty stream that out-sits
        idle_timeout is aborted by the probe itself, so the next pull
        fails the job instead of waiting."""
        buffer = IngestBuffer(idle_timeout=0.05)
        assert not buffer.poll_ready()
        time.sleep(0.08)
        assert buffer.poll_ready()
        with pytest.raises(RuntimeError, match="idle"):
            next(iter(buffer))

    def test_no_idle_timeout_never_expires(self):
        buffer = IngestBuffer()
        time.sleep(0.02)
        assert not buffer.poll_ready()

    def test_idle_clock_starts_at_first_probe_not_construction(self):
        """A job may sit queued longer than idle_timeout before the
        dispatcher ever looks at its stream; the eviction clock must
        start at the first probe (activation), not at submit."""
        buffer = IngestBuffer(idle_timeout=0.05)
        time.sleep(0.08)  # "queued" past the timeout
        assert not buffer.poll_ready()  # first probe arms, not aborts
        time.sleep(0.08)
        assert buffer.poll_ready()  # now genuinely idle: aborted
        with pytest.raises(RuntimeError, match="idle"):
            next(iter(buffer))

    def test_put_restarts_the_idle_clock(self):
        buffer = IngestBuffer(idle_timeout=0.2)
        time.sleep(0.12)
        buffer.put(batch_of(1))
        next(iter(buffer))
        time.sleep(0.12)  # > 0.2 since creation, < 0.2 since the pop
        assert not buffer.poll_ready()
