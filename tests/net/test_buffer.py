"""IngestBuffer: FIFO order, close/abort semantics, blocking consume."""

import threading

import numpy as np
import pytest

from repro.net import IngestBuffer
from repro.workloads.streams import timestamp_batch
from repro.workloads.tuples import TupleBatch


def batch_of(*keys):
    return timestamp_batch(TupleBatch.from_keys(
        np.asarray(keys, dtype=np.uint64)))


class TestIngestBuffer:
    def test_fifo_order_and_close_ends_iteration(self):
        buffer = IngestBuffer()
        first, second = batch_of(1, 2), batch_of(3)
        buffer.put(first)
        buffer.put(second)
        buffer.close()
        drained = list(buffer)
        assert [d.batch.keys.tolist() for d in drained] == [[1, 2], [3]]

    def test_put_after_close_raises(self):
        buffer = IngestBuffer()
        buffer.close()
        with pytest.raises(RuntimeError):
            buffer.put(batch_of(1))

    def test_abort_poisons_consumer_even_with_items_buffered(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        buffer.abort("connection lost")
        with pytest.raises(RuntimeError, match="connection lost"):
            next(iter(buffer))

    def test_consumer_blocks_until_producer_puts(self):
        buffer = IngestBuffer()
        got = []

        def consume():
            got.append(next(iter(buffer)))

        thread = threading.Thread(target=consume)
        thread.start()
        thread.join(timeout=0.05)
        assert thread.is_alive()  # blocked, nothing buffered yet
        buffer.put(batch_of(9))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got[0].batch.keys.tolist() == [9]

    def test_depth_and_counters(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1, 2, 3))
        buffer.put(batch_of(4))
        assert buffer.depth() == 2
        assert buffer.depth_peak == 2
        assert buffer.batches_in == 2
        assert buffer.tuples_in == 4
        next(iter(buffer))
        assert buffer.depth() == 1
        assert buffer.depth_peak == 2  # peak is sticky

    def test_on_drain_fires_per_consumed_batch(self):
        drains = []
        buffer = IngestBuffer(on_drain=lambda: drains.append(1))
        buffer.put(batch_of(1))
        buffer.put(batch_of(2))
        buffer.close()
        list(buffer)
        assert len(drains) == 2

    def test_idle_timeout_poisons_a_silent_stream(self):
        buffer = IngestBuffer(idle_timeout=0.05)
        with pytest.raises(RuntimeError, match="idle"):
            next(iter(buffer))

    def test_idle_timeout_restarts_per_consumed_batch(self):
        buffer = IngestBuffer(idle_timeout=10.0)
        buffer.put(batch_of(1))
        # Data available: returns immediately, no timeout involved.
        assert next(iter(buffer)).batch.keys.tolist() == [1]

    def test_idle_timeout_validated(self):
        with pytest.raises(ValueError):
            IngestBuffer(idle_timeout=0)

    def test_drained_only_after_close_and_empty(self):
        buffer = IngestBuffer()
        buffer.put(batch_of(1))
        assert not buffer.drained()
        buffer.close()
        assert not buffer.drained()  # one batch still buffered
        list(buffer)
        assert buffer.drained()
