"""StreamGateway end to end over real sockets.

Every test runs against a live TCP listener on an ephemeral port.  The
acceptance bar: results streamed over the wire are *bit-identical* to
the same seeded workload submitted in-process, backpressure stalls
well-behaved clients and sheds flooding ones without losing any
accepted batch, and tenant contracts (auth, admission quotas) hold at
the socket boundary.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.net import GatewayError, StreamClient, StreamGateway, protocol
from repro.service import StreamService, TenantSpec
from repro.service.jobs import QuotaExceededError, kernel_for
from repro.workloads.streams import chunk_stream
from repro.workloads.zipf import ZipfGenerator

WINDOW = 2.56e-6


def zipf_batches(alpha=1.5, tuples=8_000, seed=7, chunk=2_000):
    return list(chunk_stream(
        ZipfGenerator(alpha=alpha, seed=seed).generate(tuples), chunk))


def golden_histogram(batches):
    keys = np.concatenate([b.batch.keys for b in batches])
    values = np.concatenate([b.batch.values for b in batches])
    return kernel_for("histo", 16).golden(keys, values)


def in_process_result(batches, app="histo", workers=2):
    service = StreamService(workers=workers)
    job_id = service.submit(app, iter(batches), window_seconds=WINDOW)
    service.run()
    result = service.result(job_id)
    service.shutdown()
    return result


@pytest.fixture
def fleet():
    """(service, gateway) pair serving on an ephemeral port."""
    service = StreamService(workers=2)
    gateway = StreamGateway(service, high_water=8)
    gateway.start()
    yield service, gateway
    gateway.stop()
    service.shutdown()


class TestRoundTrip:
    def test_wire_result_bit_identical_to_in_process(self, fleet):
        service, gateway = fleet
        batches = zipf_batches()
        reference = in_process_result(batches)
        with StreamClient(gateway.host, gateway.port) as client:
            job_id = client.submit_stream("histo", iter(batches),
                                          window_seconds=WINDOW)
            result = client.result(job_id)
        assert np.array_equal(result.result, reference.result)
        assert result.tuples == reference.tuples
        assert result.segments == reference.segments

    def test_poll_reports_completion_and_counters_merge(self, fleet):
        service, gateway = fleet
        batches = zipf_batches(tuples=4_000)
        with StreamClient(gateway.host, gateway.port) as client:
            job_id = client.submit_stream("histo", iter(batches),
                                          window_seconds=WINDOW)
            client.result(job_id)
            status = client.poll(job_id)
        assert status["status"] == "completed"
        snap = service.metrics.snapshot()["gateway"]
        assert snap["connections_opened"] == 1
        assert snap["batches_ingested"] == len(batches)
        assert snap["tuples_ingested"] == 4_000
        assert snap["bytes_received"] > 0
        assert snap["bytes_sent"] > 0

    def test_cancel_withdraws_queued_job(self, fleet):
        service, gateway = fleet
        with StreamClient(gateway.host, gateway.port) as client:
            job_id = client.submit("histo", window_seconds=WINDOW)
            # The job may already have been admitted by the dispatcher
            # (cancel targets queued jobs only) — accept either verdict,
            # but the gateway must answer coherently.
            cancelled = client.cancel(job_id)
            assert cancelled in (True, False)


class TestTenantContracts:
    def test_quota_rejection_over_the_wire(self):
        service = StreamService(workers=2)
        service.register_tenant(TenantSpec("alice", max_queued=1))
        gateway = StreamGateway(service, high_water=8, serve=False)
        gateway.start()
        try:
            with StreamClient(gateway.host, gateway.port,
                              tenant="alice") as client:
                client.submit("histo", window_seconds=WINDOW)
                with pytest.raises(QuotaExceededError):
                    client.submit("histo", window_seconds=WINDOW)
            assert service.metrics.snapshot()["tenants"]["alice"][
                "jobs"]["rejected"] == 1
        finally:
            gateway.stop()
            service.shutdown()

    def test_token_auth_refuses_bad_credentials(self):
        service = StreamService(workers=1)
        gateway = StreamGateway(service, tokens={"alice": "s3cret"},
                                serve=False)
        gateway.start()
        try:
            with pytest.raises(GatewayError) as excinfo:
                StreamClient(gateway.host, gateway.port,
                             tenant="alice", token="wrong")
            assert excinfo.value.code == "auth"
            with pytest.raises(GatewayError):
                StreamClient(gateway.host, gateway.port,
                             tenant="mallory", token="s3cret")
            client = StreamClient(gateway.host, gateway.port,
                                  tenant="alice", token="s3cret")
            client.close()
        finally:
            gateway.stop()
            service.shutdown()

    def test_second_hello_is_rejected_and_binding_kept(self, fleet):
        """Re-auth on an established connection must be refused: a
        rebind would leave streams opened under the old tenant in its
        gate while new batches charge the new tenant's credits."""
        _, gateway = fleet
        with StreamClient(gateway.host, gateway.port,
                          tenant="default") as client:
            reply = client._request({"type": "hello", "tenant": "other"})
            assert reply["type"] == "error"
            assert reply["code"] == "protocol"
            # The original binding still works.
            job_id = client.submit("histo", window_seconds=WINDOW)
            assert job_id

    def test_submit_before_hello_is_refused(self, fleet):
        _, gateway = fleet
        with socket.create_connection((gateway.host, gateway.port),
                                      timeout=10) as sock:
            sock.sendall(protocol.encode(
                {"type": "submit", "app": "histo"}))
            reply = protocol.decode(sock.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "hello-required"

    def test_malformed_line_counts_protocol_error(self, fleet):
        service, gateway = fleet
        with socket.create_connection((gateway.host, gateway.port),
                                      timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = protocol.decode(sock.makefile("rb").readline())
        assert reply["type"] == "error"
        assert reply["code"] == "protocol"
        assert service.metrics.snapshot()["gateway"][
            "protocol_errors"] == 1


class TestBackpressure:
    def test_well_behaved_client_stalls_and_loses_nothing(self):
        """With the dispatcher frozen the client runs out of credits
        and blocks on a credit request; resuming dispatch drains the
        tenant, the stall releases, and every batch lands."""
        service = StreamService(workers=2)
        gateway = StreamGateway(service, high_water=2, serve=False)
        gateway.start()
        batches = zipf_batches(tuples=6_000, chunk=1_000)
        client = StreamClient(gateway.host, gateway.port)
        finished = {}

        def stream():
            finished["job"] = client.submit_stream(
                "histo", iter(batches), window_seconds=WINDOW)

        thread = threading.Thread(target=stream)
        try:
            thread.start()
            thread.join(timeout=0.5)
            assert thread.is_alive()  # stalled at the high-water mark
            gateway.start_serving()
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert client.credit_stalls >= 1
            assert client.shed_batches == 0
            result = client.result(finished["job"])
            assert np.array_equal(result.result,
                                  golden_histogram(batches))
            snap = service.metrics.snapshot()["gateway"]
            assert snap["credit_stalls"] >= 1
            assert snap["batches_shed"] == 0
        finally:
            client.close()
            gateway.stop()
            service.shutdown()

    def test_flooding_client_is_shed_not_buffered(self):
        """A client ignoring its credits gets busy replies: the ingest
        depth stays at the high-water mark and the accepted batches
        still produce an exact result."""
        high_water = 4
        service = StreamService(workers=2)
        gateway = StreamGateway(service, high_water=high_water,
                                serve=False)
        gateway.start()
        batches = zipf_batches(tuples=12_000, chunk=1_000)
        client = StreamClient(gateway.host, gateway.port)
        try:
            job_id = client.submit("histo", window_seconds=WINDOW)
            accepted = [client.send_batch(job_id, batch, wait=False)
                        for batch in batches]
            assert sum(accepted) == high_water
            assert client.shed_batches == len(batches) - high_water
            client.end(job_id)
            gateway.start_serving()
            result = client.result(job_id)
            kept = [b for b, ok in zip(batches, accepted) if ok]
            assert np.array_equal(result.result, golden_histogram(kept))
            snap = service.metrics.snapshot()["gateway"]
            assert snap["batches_shed"] == len(batches) - high_water
            assert snap["ingest_depth"]["peak"] <= high_water
        finally:
            client.close()
            gateway.stop()
            service.shutdown()


class TestRobustness:
    def test_stale_credit_busy_is_retried_not_lost(self):
        """A wait=True sender whose cached credit count is stale (e.g.
        another connection of the tenant raced it) gets a busy reply:
        the client must stall and *resend*, never drop the batch."""
        service = StreamService(workers=2)
        gateway = StreamGateway(service, high_water=2, serve=False)
        gateway.start()
        batches = zipf_batches(tuples=3_000, chunk=1_000)
        client = StreamClient(gateway.host, gateway.port)
        sent = {}
        try:
            job_id = client.submit("histo", window_seconds=WINDOW)
            assert client.send_batch(job_id, batches[0], wait=False)
            assert client.send_batch(job_id, batches[1], wait=False)
            assert client.credits == 0
            client.credits = 1  # simulate a raced, stale credit count

            def push():
                sent["ok"] = client.send_batch(job_id, batches[2],
                                               wait=True)

            thread = threading.Thread(target=push)
            thread.start()
            thread.join(timeout=0.3)
            assert thread.is_alive()  # busy -> stalled, not dropped
            gateway.start_serving()
            thread.join(timeout=60.0)
            assert sent["ok"] is True
            assert client.shed_batches == 0
            client.end(job_id)
            result = client.result(job_id)
            assert np.array_equal(result.result,
                                  golden_histogram(batches))
        finally:
            client.close()
            gateway.stop()
            service.shutdown()

    def test_idle_client_fails_its_job_with_a_bounded_stall(self):
        """A client that submits and goes silent (no batch, no end,
        connection up) must not stall the fleet forever: its stream
        times out, the job fails, and other tenants' jobs complete."""
        service = StreamService(workers=2)
        gateway = StreamGateway(service, high_water=8, idle_timeout=0.2)
        gateway.start()
        quiet = StreamClient(gateway.host, gateway.port)
        try:
            stalled_job = quiet.submit("histo", window_seconds=WINDOW)
            quiet.send_batch(stalled_job,
                             zipf_batches(tuples=1_000, chunk=1_000)[0])
            # ...and now says nothing more.
            batches = zipf_batches(tuples=4_000)
            with StreamClient(gateway.host, gateway.port,
                              tenant="other") as other:
                job_id = other.submit_stream("histo", iter(batches),
                                             window_seconds=WINDOW)
                result = other.result(job_id, timeout=30.0)
            assert np.array_equal(result.result,
                                  golden_histogram(batches))
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline \
                    and service.poll(stalled_job)["status"] != "failed":
                time.sleep(0.02)
            status = service.poll(stalled_job)
            assert status["status"] == "failed"
            assert "idle" in status["error"]
        finally:
            quiet.close()
            gateway.stop()
            service.shutdown()

    def test_dead_connection_releases_tenant_credits(self):
        """A client that vanishes with batches still buffered must not
        pin the tenant's high-water accounting forever: the aborted
        buffers drop their undelivered batches, so a fresh connection
        of the same tenant gets its full credit line back."""
        high_water = 2
        service = StreamService(workers=1)
        gateway = StreamGateway(service, high_water=high_water,
                                serve=False)  # nothing ever drains
        gateway.start()
        batches = zipf_batches(tuples=3_000, chunk=1_000)
        try:
            flaky = StreamClient(gateway.host, gateway.port, timeout=30)
            job_id = flaky.submit("histo", window_seconds=WINDOW)
            for batch in batches[:high_water]:
                assert flaky.send_batch(job_id, batch, wait=False)
            assert flaky.credits == 0
            # Vanish mid-stream with both credits consumed.
            flaky._sock.shutdown(socket.SHUT_RDWR)
            flaky._sock.close()
            successor = StreamClient(gateway.host, gateway.port,
                                     timeout=30)
            try:
                # Blocks only until the gateway reaps the dead
                # connection; the seed bug kept the tenant pinned at
                # zero credits forever.
                assert successor.wait_credit() == high_water
            finally:
                successor.close()
        finally:
            gateway.stop()
            service.shutdown()

    def test_cancel_releases_buffered_credits(self):
        """Cancelling a still-queued job whose stream already buffered
        batches must drop them from the tenant's high-water depth: the
        job never runs, so nothing else would ever drain them."""
        high_water = 2
        service = StreamService(workers=1)
        gateway = StreamGateway(service, high_water=high_water,
                                serve=False)  # job stays queued
        gateway.start()
        batches = zipf_batches(tuples=3_000, chunk=1_000)
        client = StreamClient(gateway.host, gateway.port, timeout=30)
        try:
            job_id = client.submit("histo", window_seconds=WINDOW)
            for batch in batches[:high_water]:
                assert client.send_batch(job_id, batch, wait=False)
            assert client.credits == 0
            assert client.cancel(job_id)
            # The seed bug kept the cancelled stream's batches counted
            # forever, deadlocking the tenant at zero credits.
            assert client.wait_credit() == high_water
        finally:
            client.close()
            gateway.stop()
            service.shutdown()

    def test_gateway_restarts_after_stop(self):
        """stop() then start() must yield a live gateway again (a
        stale stop flag would leave accept/dispatch threads dead)."""
        service = StreamService(workers=1)
        gateway = StreamGateway(service)
        gateway.start()
        gateway.stop()
        gateway.start()
        batches = zipf_batches(tuples=2_000, chunk=1_000)
        try:
            with StreamClient(gateway.host, gateway.port) as client:
                job_id = client.submit_stream("histo", iter(batches),
                                              window_seconds=WINDOW)
                result = client.result(job_id, timeout=30.0)
            assert np.array_equal(result.result,
                                  golden_histogram(batches))
        finally:
            gateway.stop()
            service.shutdown()

    def test_empty_open_stream_does_not_stall_siblings(self):
        """The dispatcher must skip an admitted stream with nothing
        buffered instead of blocking in next(): with eviction disabled
        (idle_timeout=None) a sibling job of the same tenant still
        streams past the high-water mark and completes, and the quiet
        stream stays healthy for a late finish."""
        service = StreamService(workers=2)
        service.register_tenant(TenantSpec("alice", max_in_flight=2))
        gateway = StreamGateway(service, high_water=2,
                                idle_timeout=None)
        gateway.start()
        batches = zipf_batches(tuples=6_000, chunk=1_000)
        done = {}
        client = StreamClient(gateway.host, gateway.port,
                              tenant="alice")

        def stream_sibling():
            job_id = client.submit_stream("histo", iter(batches),
                                          window_seconds=WINDOW)
            done["result"] = client.result(job_id, timeout=30.0)

        try:
            quiet_job = client.submit("histo", window_seconds=WINDOW)
            thread = threading.Thread(target=stream_sibling)
            thread.start()
            thread.join(timeout=60.0)
            assert not thread.is_alive()  # seed bug: wedged forever
            assert np.array_equal(done["result"].result,
                                  golden_histogram(batches))
            # The quiet stream was skipped, not failed: it can still
            # finish normally.
            client.end(quiet_job)
            client.result(quiet_job, timeout=30.0)
            assert service.poll(quiet_job)["status"] == "completed"
        finally:
            client.close()
            gateway.stop()
            service.shutdown()

    def test_result_long_wait_is_a_graceful_timeout(self):
        """result() must widen the socket deadline past the requested
        server-side wait: a job that never completes surfaces as the
        protocol's 'timeout' error reply, not a raw socket.timeout
        mid-read (the seed failure whenever timeout > socket default)."""
        service = StreamService(workers=1)
        gateway = StreamGateway(service, serve=False)
        gateway.start()
        client = StreamClient(gateway.host, gateway.port, timeout=0.5)
        try:
            job_id = client.submit("histo", window_seconds=WINDOW)
            with pytest.raises(GatewayError) as excinfo:
                client.result(job_id, timeout=1.5)
            assert excinfo.value.code == "timeout"
        finally:
            client.close()
            gateway.stop()
            service.shutdown()

    def test_batch_racing_abort_gets_closed_stream_reply(self):
        """abort() landing between _on_batch's closed check and the
        put (gateway stop, teardown from another thread) must yield a
        coherent error reply, not an uncaught RuntimeError that kills
        the handler thread."""
        from repro.net.buffer import IngestBuffer
        from repro.net.gateway import _Connection

        service = StreamService(workers=1)
        gateway = StreamGateway(service, serve=False)
        conn = _Connection(sock=None)
        conn.tenant = "default"
        buffer = IngestBuffer()
        conn.buffers["job"] = buffer
        gateway._gate("default").add(buffer)
        original = IngestBuffer.put

        def racing_put(batch):
            buffer.abort("connection torn down")
            original(buffer, batch)

        buffer.put = racing_put
        message = {
            "type": "batch", "job_id": "job",
            **protocol.batch_payload(
                zipf_batches(tuples=1_000, chunk=1_000)[0]),
        }
        reply = gateway._handle(conn, message)
        assert reply["type"] == "error"
        assert reply["code"] == "closed-stream"
        service.shutdown()

    def test_oversized_line_is_rejected_and_disconnected(self):
        service = StreamService(workers=1)
        gateway = StreamGateway(service, serve=False,
                                max_line_bytes=1024)
        gateway.start()
        try:
            with socket.create_connection((gateway.host, gateway.port),
                                          timeout=10) as sock:
                rfile = sock.makefile("rb")
                sock.sendall(b"x" * 4096 + b"\n")
                reply = protocol.decode(rfile.readline())
                assert reply["type"] == "error"
                assert reply["code"] == "protocol"
                assert rfile.readline() == b""  # server hung up
            assert service.metrics.snapshot()["gateway"][
                "protocol_errors"] == 1
        finally:
            gateway.stop()
            service.shutdown()

    def test_dispatcher_death_is_surfaced_to_clients(self):
        service = StreamService(workers=1)
        gateway = StreamGateway(service, serve=False)
        service.run = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("kaboom"))
        gateway.start()
        gateway.start_serving()
        client = StreamClient(gateway.host, gateway.port)
        try:
            deadline = time.monotonic() + 10.0
            while gateway.dispatch_error is None \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert gateway.dispatch_error == "kaboom"
            job_id = client.submit("histo", window_seconds=WINDOW)
            client.end(job_id)
            with pytest.raises(GatewayError) as excinfo:
                client.result(job_id, timeout=5.0)
            assert excinfo.value.code == "dispatcher-error"
        finally:
            client.close()
            gateway.stop()
            service.shutdown()


class TestConcurrency:
    def test_concurrent_clients_merge_deterministically(self):
        """Three tenants stream different seeded workloads at once;
        each result is bit-identical to its own in-process run."""
        workloads = {
            "alice": zipf_batches(alpha=1.8, tuples=6_000, seed=1),
            "bob": zipf_batches(alpha=1.2, tuples=6_000, seed=2),
            "carol": zipf_batches(alpha=0.8, tuples=6_000, seed=3),
        }
        references = {tenant: in_process_result(batches)
                      for tenant, batches in workloads.items()}
        service = StreamService(workers=2)
        for tenant in workloads:
            service.register_tenant(TenantSpec(tenant))
        gateway = StreamGateway(service, high_water=8)
        gateway.start()
        results = {}

        def run_client(tenant):
            with StreamClient(gateway.host, gateway.port,
                              tenant=tenant) as client:
                job_id = client.submit_stream(
                    "histo", iter(workloads[tenant]),
                    window_seconds=WINDOW)
                results[tenant] = client.result(job_id)

        try:
            threads = [threading.Thread(target=run_client, args=(t,))
                       for t in workloads]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(t.is_alive() for t in threads)
            for tenant, reference in references.items():
                assert np.array_equal(results[tenant].result,
                                      reference.result), tenant
                assert results[tenant].tenant_id == tenant
        finally:
            gateway.stop()
            service.shutdown()

    def test_connection_drop_fails_job_instead_of_hanging(self):
        """A client that vanishes mid-stream must not wedge the
        dispatcher: its stream aborts and the job fails cleanly."""
        service = StreamService(workers=2)
        gateway = StreamGateway(service, high_water=8)
        gateway.start()
        try:
            client = StreamClient(gateway.host, gateway.port)
            job_id = client.submit("histo", window_seconds=WINDOW)
            client.send_batch(job_id, zipf_batches(tuples=1_000,
                                                   chunk=1_000)[0])
            # Vanish without `end`: shutdown sends the FIN immediately
            # (a bare close would wait on the makefile's reference).
            client._sock.shutdown(socket.SHUT_RDWR)
            client._sock.close()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                status = service.poll(job_id)
                if status["status"] == "failed":
                    break
                time.sleep(0.02)
            assert service.poll(job_id)["status"] == "failed"
            assert "abort" in service.poll(job_id)["error"]
        finally:
            gateway.stop()
            service.shutdown()


class TestStatsVerb:
    """The ``stats`` telemetry verb (protocol >= 2)."""

    def test_json_snapshot_over_the_wire(self, fleet):
        service, gateway = fleet
        batches = zipf_batches(tuples=4_000)
        with StreamClient(gateway.host, gateway.port) as client:
            job_id = client.submit_stream("histo", iter(batches),
                                          window_seconds=WINDOW)
            client.result(job_id)
            snapshot = client.stats()
        assert snapshot["jobs"]["completed"] == 1
        assert snapshot["tuples_windowed"] == 4_000
        assert snapshot["gateway"]["batches_ingested"] == len(batches)

    def test_prometheus_body_parses_cleanly(self, fleet):
        from repro.obs.exposition import parse_prometheus

        service, gateway = fleet
        with StreamClient(gateway.host, gateway.port) as client:
            job_id = client.submit_stream(
                "histo", iter(zipf_batches(tuples=4_000)),
                window_seconds=WINDOW)
            client.result(job_id)
            body = client.stats(format="prometheus")
        samples = parse_prometheus(body)
        assert samples[("repro_jobs_total",
                        frozenset({("state", "completed")}))] == 1
        assert samples[("repro_tuples_windowed_total",
                        frozenset())] == 4_000

    def test_unknown_format_is_a_bad_request(self, fleet):
        service, gateway = fleet
        with StreamClient(gateway.host, gateway.port) as client:
            with pytest.raises(GatewayError) as excinfo:
                client.stats(format="xml")
        assert excinfo.value.code == "bad-request"

    def test_stats_requires_hello_first(self, fleet):
        service, gateway = fleet
        with socket.create_connection(
                (gateway.host, gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")
            sock.sendall(protocol.encode({"type": "stats"}))
            reply = protocol.decode(rfile.readline())
        assert reply["type"] == "error"

    def test_welcome_advertises_protocol_2(self, fleet):
        service, gateway = fleet
        with socket.create_connection(
                (gateway.host, gateway.port), timeout=10) as sock:
            rfile = sock.makefile("rb")
            sock.sendall(protocol.encode(
                {"type": "hello", "tenant": "default"}))
            welcome = protocol.decode(rfile.readline())
        assert welcome["protocol"] == protocol.PROTOCOL_VERSION == 2
