"""Wire protocol: framing, exact batch payloads, tagged results."""

import json

import numpy as np
import pytest

from repro.net import protocol
from repro.workloads.streams import TimestampedBatch, timestamp_batch
from repro.workloads.tuples import TupleBatch


def make_batch(n=64, seed=3):
    rng = np.random.default_rng(seed)
    batch = TupleBatch(
        keys=rng.integers(0, 2**63, size=n, dtype=np.uint64),
        values=rng.integers(-2**31, 2**31, size=n, dtype=np.int64),
    )
    return timestamp_batch(batch, start=1.5e-6)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"type": "hello", "tenant": "alice", "token": None}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_one_line(self):
        line = protocol.encode({"type": "ack", "note": "a\nb"})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1

    def test_malformed_json_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{not json}\n")

    def test_non_object_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_missing_type_raises(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b'{"tenant": "x"}\n')

    def test_oversized_line_raises(self):
        line = b'{"type": "batch", "pad": "' \
            + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(line)


class TestBatchPayload:
    def test_round_trip_is_bit_identical(self):
        batch = make_batch()
        wire = json.loads(json.dumps(protocol.batch_payload(batch)))
        restored = protocol.decode_batch(wire)
        assert np.array_equal(restored.batch.keys, batch.batch.keys)
        assert np.array_equal(restored.batch.values, batch.batch.values)
        assert np.array_equal(restored.timestamps, batch.timestamps)
        assert restored.batch.keys.dtype == np.uint64
        assert restored.batch.values.dtype == np.int64
        assert restored.timestamps.dtype == np.float64

    def test_uint64_top_bit_survives(self):
        batch = TimestampedBatch(
            np.array([0.0]),
            TupleBatch(np.array([2**64 - 1], dtype=np.uint64),
                       np.array([-2**63], dtype=np.int64)))
        wire = json.loads(json.dumps(protocol.batch_payload(batch)))
        restored = protocol.decode_batch(wire)
        assert restored.batch.keys[0] == np.uint64(2**64 - 1)
        assert restored.batch.values[0] == np.int64(-2**63)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch(
                {"keys": [1, 2], "values": [1], "timestamps": [0.0, 0.0]})

    def test_missing_field_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch({"keys": [1], "values": [1]})


class TestResultPayload:
    def round_trip(self, obj):
        return protocol.from_wire(
            json.loads(json.dumps(protocol.to_wire(obj))))

    def test_ndarray_round_trip(self):
        arr = np.arange(16, dtype=np.int64) * -3
        back = self.round_trip(arr)
        assert isinstance(back, np.ndarray)
        assert back.dtype == np.int64
        assert np.array_equal(back, arr)

    def test_dict_with_int_keys_round_trip(self):
        obj = {7: [1, 2, 3], 2**40: [4]}
        assert self.round_trip(obj) == obj

    def test_numpy_scalar_round_trip(self):
        back = self.round_trip(np.uint64(2**63 + 5))
        assert back == np.uint64(2**63 + 5)
        assert back.dtype == np.uint64

    def test_nested_mixture_round_trip(self):
        obj = {"counts": np.array([1, 2], dtype=np.uint64),
               "pairs": (3, "x"), "flat": [1.5, None, True]}
        back = self.round_trip(obj)
        assert np.array_equal(back["counts"], obj["counts"])
        assert back["pairs"] == (3, "x")
        assert back["flat"] == [1.5, None, True]
