"""Stage-latency breakdown and decision-log analysis of captures."""

from repro.obs import (
    decision_log,
    read_jsonl,
    render_breakdown,
    stage_breakdown,
    write_jsonl,
)
from repro.obs import events as trace_events
from repro.obs.analyze import job_spans
from repro.obs.events import TraceEvent


def _lifecycle(job_id, tenant, submit, admit, shard, cycles,
               merge_wall, complete_wall):
    return [
        TraceEvent(trace_events.JOB_SUBMIT, submit, 0.0,
                   job_id=job_id, tenant_id=tenant),
        TraceEvent(trace_events.JOB_ADMIT, admit, 0.0,
                   job_id=job_id, tenant_id=tenant),
        TraceEvent(trace_events.JOB_SHARD, shard, 0.0,
                   job_id=job_id, tenant_id=tenant, worker=0),
        TraceEvent(trace_events.JOB_SEGMENT, shard, 0.0,
                   job_id=job_id, tenant_id=tenant, worker=0,
                   data={"tuples": 100, "cycles": cycles}),
        TraceEvent(trace_events.JOB_MERGE, shard, merge_wall,
                   job_id=job_id, tenant_id=tenant),
        TraceEvent(trace_events.JOB_COMPLETE, shard, complete_wall,
                   job_id=job_id, tenant_id=tenant),
    ]


class TestJobSpans:
    def test_stage_arithmetic(self):
        spans = job_spans(_lifecycle("j", "alice", submit=0, admit=4_000,
                                     shard=12_000, cycles=900,
                                     merge_wall=10.0,
                                     complete_wall=10.002))
        record = spans["j"]
        assert record["queue"] == 4_000
        assert record["dispatch"] == 8_000
        assert record["execute"] == 900
        assert abs(record["merge"] - 0.002) < 1e-9

    def test_partial_trace_yields_none_stages(self):
        events = [TraceEvent(trace_events.JOB_SEGMENT, 5, 0.0,
                             job_id="j", data={"cycles": 10})]
        record = job_spans(events)["j"]
        assert record["queue"] is None
        assert record["dispatch"] is None
        assert record["execute"] == 10
        assert record["merge"] is None


class TestStageBreakdown:
    def test_groups_by_tenant_and_filters(self):
        events = (
            _lifecycle("a", "alice", 0, 1_000, 5_000, 500, 1.0, 1.001)
            + _lifecycle("b", "bob", 0, 9_000, 20_000, 2_000, 2.0, 2.01)
        )
        breakdown = stage_breakdown(events)
        assert set(breakdown) == {"alice", "bob"}
        assert breakdown["alice"]["queue"]["p50"] == 1_000
        assert breakdown["bob"]["dispatch"]["max"] == 11_000
        only_bob = stage_breakdown(events, tenant_id="bob")
        assert set(only_bob) == {"bob"}

    def test_render_is_aligned_and_unit_labelled(self):
        events = _lifecycle("a", "alice", 0, 1_000, 5_000, 500,
                            1.0, 1.001)
        text = render_breakdown(stage_breakdown(events))
        assert "alice" in text
        for unit in ("tup", "cyc", "ms"):
            assert unit in text
        widths = {len(line) for line in text.splitlines()[:2]}
        assert len(widths) == 1  # header and rule align


class TestDecisionLog:
    def test_flattens_control_events_in_order(self):
        events = [
            TraceEvent(trace_events.CONTROL_DRIFT, 8_000, 0.0,
                       tenant_id="batch",
                       data={"interval_tuples": 8_000}),
            TraceEvent(trace_events.JOB_WINDOW, 8_000, 0.0,
                       job_id="j"),
            TraceEvent(trace_events.CONTROL_DECISION, 8_000, 0.0,
                       tenant_id="batch", data={"decision": "hold"}),
            TraceEvent(trace_events.CONTROL_RESIZE, 12_000, 0.0,
                       data={"size_from": 4, "size_to": 6,
                             "reason": "slo"}),
        ]
        log = decision_log(events)
        assert [entry["kind"] for entry in log] == [
            "control.drift", "control.decision", "control.resize"]
        assert log[1]["decision"] == "hold"
        assert log[2]["size_to"] == 6


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        events = _lifecycle("j", "alice", 0, 1, 2, 3, 4.0, 5.0)
        path = tmp_path / "capture.jsonl"
        assert write_jsonl(events, path) == len(events)
        assert read_jsonl(path) == events
