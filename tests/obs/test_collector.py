"""The collector: ring semantics, sinks, and the disabled fast path."""

from repro.obs import JsonlSink, MemorySink, TraceCollector, read_jsonl
from repro.obs import events as trace_events

import pytest


class TestTraceCollector:
    def test_disabled_collector_records_nothing(self):
        tracer = TraceCollector(enabled=False)
        sink = tracer.add_sink(MemorySink())
        tracer.emit(trace_events.JOB_SUBMIT, 0, job_id="j")
        assert tracer.events() == []
        assert sink.events == []
        assert tracer.emitted == 0

    def test_enable_disable_toggle(self):
        tracer = TraceCollector()
        assert not tracer.enabled
        tracer.enable()
        tracer.emit(trace_events.JOB_SUBMIT, 0, job_id="j")
        tracer.disable()
        tracer.emit(trace_events.JOB_SUBMIT, 1, job_id="k")
        assert len(tracer.events()) == 1

    def test_ring_bounds_memory_but_counts_drops(self):
        tracer = TraceCollector(capacity=4, enabled=True)
        for index in range(10):
            tracer.emit(trace_events.JOB_WINDOW, index)
        assert len(tracer.events()) == 4
        assert tracer.dropped == 6
        assert [e.clock for e in tracer.events()] == [6, 7, 8, 9]

    def test_sinks_see_events_the_ring_dropped(self):
        tracer = TraceCollector(capacity=2, enabled=True)
        sink = tracer.add_sink(MemorySink())
        for index in range(5):
            tracer.emit(trace_events.JOB_WINDOW, index)
        assert len(sink.events) == 5

    def test_kind_and_prefix_filters(self):
        tracer = TraceCollector(enabled=True)
        tracer.emit(trace_events.JOB_SUBMIT, 0, job_id="j")
        tracer.emit(trace_events.JOB_ADMIT, 1, job_id="j")
        tracer.emit(trace_events.CONTROL_DRIFT, 2)
        assert len(tracer.events(trace_events.JOB_SUBMIT)) == 1
        assert len(tracer.events("job.")) == 2
        assert len(tracer.events("control.")) == 1

    def test_bound_clock_fills_missing_clock(self):
        readings = iter([100, 200])
        tracer = TraceCollector(enabled=True,
                                clock=lambda: next(readings))
        tracer.emit(trace_events.JOB_SUBMIT, job_id="a")
        tracer.emit(trace_events.JOB_SUBMIT, 50, job_id="b")
        clocks = [e.clock for e in tracer.events()]
        assert clocks == [100, 50]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_describe_mentions_state(self):
        tracer = TraceCollector(enabled=True)
        assert "tracing on" in tracer.describe()
        tracer.disable()
        assert "tracing off" in tracer.describe()


class TestJsonlSink:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = TraceCollector(enabled=True)
        tracer.add_sink(JsonlSink(path))
        tracer.emit(trace_events.JOB_SUBMIT, 0, job_id="j",
                    tenant_id="alice", app="histo")
        tracer.emit(trace_events.JOB_COMPLETE, 4000, job_id="j",
                    tenant_id="alice", segments=4)
        tracer.close()
        events = read_jsonl(path)
        assert [e.kind for e in events] == ["job.submit", "job.complete"]
        assert events[0].data == {"app": "histo"}
        assert events[1].clock == 4000

    def test_lazy_open_writes_nothing_without_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_close_is_idempotent_and_reopenable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = TraceCollector(enabled=True)
        tracer.add_sink(sink)
        tracer.emit(trace_events.JOB_SUBMIT, 0, job_id="a")
        tracer.close()
        tracer.close()
        tracer.emit(trace_events.JOB_SUBMIT, 1, job_id="b")
        tracer.close()
        assert len(read_jsonl(path)) == 2
