"""The trace-event model: construction, serialization, round-trips."""

import json

import pytest

from repro.obs import events as trace_events
from repro.obs.events import TraceEvent


class TestTraceEvent:
    def test_round_trips_through_json(self):
        event = TraceEvent(
            kind=trace_events.JOB_SEGMENT, clock=4000, wall=12.5,
            job_id="job-1", tenant_id="alice", worker=2, generation=1,
            data={"tuples": 4000, "cycles": 1234})
        assert TraceEvent.from_json(event.to_json()) == event

    def test_to_dict_elides_unset_context(self):
        event = TraceEvent(kind=trace_events.BACKEND_DRAIN, clock=0,
                           wall=1.0)
        payload = event.to_dict()
        assert "job_id" not in payload
        assert "worker" not in payload
        assert payload["kind"] == "backend.drain"

    def test_json_is_compact_single_line(self):
        event = TraceEvent(kind=trace_events.JOB_SUBMIT, clock=1,
                           wall=2.0, job_id="j", data={"app": "histo"})
        line = event.to_json()
        assert "\n" not in line
        assert " " not in line.split('"app"')[0]
        assert json.loads(line)["data"] == {"app": "histo"}

    def test_from_dict_defaults_missing_data(self):
        event = TraceEvent.from_dict(
            {"kind": "job.admit", "clock": 7, "wall": 0.0})
        assert event.data == {}
        assert event.clock == 7

    def test_kind_constants_are_layer_dotted(self):
        names = [value for name, value in vars(trace_events).items()
                 if name.isupper() and isinstance(value, str)]
        assert names
        for kind in names:
            layer, _, detail = kind.partition(".")
            assert layer in ("job", "control", "gateway", "backend",
                             "sim"), kind
            assert detail

    def test_events_are_immutable(self):
        event = TraceEvent(kind="job.submit", clock=0, wall=0.0)
        with pytest.raises(AttributeError):
            event.clock = 5
