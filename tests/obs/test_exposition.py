"""The Prometheus text exposition and its matching parser."""

import pytest

from repro.obs.exposition import parse_prometheus, to_prometheus
from repro.service.metrics import ServiceMetrics


def _exercised_metrics() -> ServiceMetrics:
    metrics = ServiceMetrics()
    metrics.record_submit("alice")
    metrics.record_submit("bob")
    metrics.sample_queue_depth(2)
    metrics.record_window(4_000)
    metrics.record_segment(0, 3_000, 900, tenant="alice")
    metrics.record_segment(1, 1_000, 400, tenant="bob")
    metrics.record_completed("alice")
    metrics.record_completed("bob")
    metrics.record_gateway(batches=3, tuples=4_000)
    metrics.record_control(drift=1, suppressed=1)
    return metrics


class TestToPrometheus:
    def test_parser_accepts_every_line(self):
        samples = parse_prometheus(
            _exercised_metrics().to_prometheus())
        assert samples  # well-formed and non-trivial

    def test_core_counters_surface(self):
        samples = parse_prometheus(
            _exercised_metrics().to_prometheus())
        assert samples[("repro_tuples_windowed_total",
                        frozenset())] == 4_000
        assert samples[("repro_jobs_total",
                        frozenset({("state", "completed")}))] == 2
        assert samples[("repro_gateway_batches_ingested_total",
                        frozenset())] == 3
        assert samples[("repro_control_replans_suppressed_total",
                        frozenset())] == 1

    def test_per_tenant_and_per_worker_labels(self):
        samples = parse_prometheus(
            _exercised_metrics().to_prometheus())
        assert samples[("repro_tenant_tuples_total",
                        frozenset({("tenant", "alice")}))] == 3_000
        assert samples[("repro_worker_cycles_total",
                        frozenset({("worker", "1")}))] == 400

    def test_quantile_summaries(self):
        samples = parse_prometheus(
            _exercised_metrics().to_prometheus())
        key = ("repro_queue_depth", frozenset({("quantile", "0.5")}))
        assert key in samples

    def test_help_and_type_precede_each_family_once(self):
        text = _exercised_metrics().to_prometheus()
        lines = text.splitlines()
        helps = [line.split()[2] for line in lines
                 if line.startswith("# HELP")]
        assert len(helps) == len(set(helps))
        for name in helps:
            assert any(line.startswith(f"# TYPE {name} ")
                       for line in lines)

    def test_label_values_are_escaped(self):
        snapshot = {"tenants": {'we"ird\\tenant': {
            "jobs": {}, "tuples": 1, "cycles": 1, "stall_cycles": 0,
            "weight": 1.0, "slo_attainment": 1.0, "queue_delay": {}}}}
        text = to_prometheus(snapshot)
        samples = parse_prometheus(text)
        tenants = {dict(labels).get("tenant")
                   for (name, labels) in samples
                   if name == "repro_tenant_tuples_total"}
        assert 'we\\"ird\\\\tenant' in tenants

    def test_custom_prefix(self):
        text = to_prometheus(ServiceMetrics().snapshot(),
                             prefix="ditto")
        assert text.startswith("# HELP ditto_")


class TestParsePrometheus:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")

    def test_skips_comments_and_blanks(self):
        assert parse_prometheus("# HELP x y\n\n# TYPE x gauge\n") == {}

    def test_parses_unlabelled_and_labelled(self):
        samples = parse_prometheus(
            'a_total 5\nb{x="1",y="two"} 2.5\n')
        assert samples[("a_total", frozenset())] == 5.0
        assert samples[("b", frozenset({("x", "1"),
                                        ("y", "two")}))] == 2.5
