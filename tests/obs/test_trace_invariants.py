"""Tracing's two hard promises, as tests.

1. **Backend invariance**: with tracing on, the deterministic
   dispatch-clock timestamps of every job-lifecycle event are identical
   whether the fleet runs on inline threads or warm worker
   subprocesses — and, for subprocesses, whether shards travel as pipe
   byte copies or shared-memory descriptors.  Segment events carry the
   clock stamped at *dispatch* time (``WorkItem.dispatch_clock``,
   shipped through the procpool pipe in both transports), so even
   events that physically happen in another process at a different
   wall time agree bit for bit.
2. **Non-perturbation**: enabling tracing changes no deterministic
   outcome — job results, cycle counts, and the metrics snapshot are
   identical with tracing on and off.
"""

import numpy as np
import pytest

from repro.obs import MemorySink, TraceCollector
from repro.obs import events as trace_events
from repro.service import SERVED_APPS, StreamService
from repro.workloads.streams import chunk_stream
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator

BACKENDS = ("inline", "process")

#: The full invariance matrix: every (backend, transport) the service
#: can run shards through.  The inline backend has no transport.
CONFIGS = (("inline", "pipe"), ("process", "pipe"), ("process", "shm"))


def app_workload(app, tuples=6_000, seed=5):
    if app == "pagerank":
        rng = np.random.default_rng(seed)
        batch = TupleBatch(
            keys=rng.integers(0, 256, tuples).astype(np.uint64),
            values=rng.integers(0, 256, tuples, dtype=np.int64),
        )
        return batch, {"num_vertices": 256}
    return ZipfGenerator(alpha=1.5, seed=seed).generate(tuples), {}


def traced_run(app, backend, *, transport="pipe", tracer=None,
               workers=4, **service_kw):
    """Serve one job; returns (events, result, snapshot)."""
    batch, params = app_workload(app)
    if tracer is None:
        tracer = TraceCollector(enabled=True)
    service = StreamService(workers=workers, balancer="skew",
                            backend=backend, transport=transport,
                            tracer=tracer, **service_kw)
    try:
        job_id = service.submit(app, chunk_stream(batch, 2_000),
                                window_seconds=2e-6, params=params,
                                job_id=f"trace-{app}")
        service.run()
        result = service.result(job_id)
        snapshot = service.metrics.snapshot()
    finally:
        service.shutdown()
    return tracer.events(), result, snapshot


def clock_view(events):
    """The deterministic, order-insensitive view of a job trace.

    Worker threads interleave differently run to run, so events are
    compared as sorted tuples; ``generation`` is excluded (the process
    pool starts at generation 1, the thread pool at 0) and so is wall
    time (host-dependent by design).
    """
    view = []
    for event in events:
        if not event.kind.startswith("job."):
            continue
        view.append((event.kind, event.clock, event.job_id,
                     event.tenant_id, event.worker,
                     tuple(sorted(
                         (k, v) for k, v in event.data.items()))))
    return sorted(view)


class TestBackendInvariantTimestamps:
    @pytest.mark.parametrize("app", SERVED_APPS)
    def test_dispatch_clock_identical_across_backends(self, app):
        runs = {config: traced_run(app, config[0], transport=config[1])
                for config in CONFIGS}
        baseline_events, baseline_result, _ = runs[("inline", "pipe")]
        for config, (events, result, _) in runs.items():
            assert clock_view(events) == clock_view(baseline_events), \
                config
            assert result.cycles == baseline_result.cycles, config

    def test_segments_carry_dispatch_time_clocks(self):
        events, _, snapshot = traced_run("histo", "inline")
        segments = [e for e in events
                    if e.kind == trace_events.JOB_SEGMENT]
        windows = {e.clock for e in events
                   if e.kind == trace_events.JOB_WINDOW}
        assert segments
        # Every segment's clock equals the clock of a closed window —
        # the dispatch-time stamp, not a completion-time read.
        assert {e.clock for e in segments} <= windows
        assert sum(e.data["cycles"] for e in segments) > 0

    def test_process_backend_traces_forks_and_drain(self):
        events, _, _ = traced_run("histo", "process")
        forks = [e for e in events
                 if e.kind == trace_events.BACKEND_FORK]
        assert len(forks) == 4
        assert all(e.data["worker_kind"] == "process" for e in forks)
        assert any(e.kind == trace_events.BACKEND_DRAIN
                   for e in events)


class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("backend,transport", CONFIGS)
    def test_results_and_metrics_identical_on_off(self, backend,
                                                  transport):
        traced_events, traced_result, traced_snap = traced_run(
            "histo", backend, transport=transport)
        off = TraceCollector(enabled=False)
        off_events, off_result, off_snap = traced_run(
            "histo", backend, transport=transport, tracer=off)
        assert off_events == []
        assert np.array_equal(traced_result.result, off_result.result)
        assert traced_result.cycles == off_result.cycles
        # Slab allocation/reuse counters depend on how fast children
        # consume blocks relative to the dispatcher (wall-clock racy by
        # nature); every other transport counter — and everything else
        # in the snapshot — must be identical with tracing on and off.
        traced_transport = traced_snap.pop("transport")
        off_transport = off_snap.pop("transport")
        assert traced_snap == off_snap
        for key in ("shards_pipe", "shards_shm", "shard_bytes_copied",
                    "shard_bytes_shared", "slab_fallbacks",
                    "shard_retries"):
            assert traced_transport[key] == off_transport[key], key
        assert traced_events  # the traced run did capture

    def test_sink_receives_full_lifecycle(self):
        tracer = TraceCollector(enabled=True)
        sink = tracer.add_sink(MemorySink())
        events, _, _ = traced_run("histo", "inline", tracer=tracer)
        kinds = {e.kind for e in sink.events}
        for expected in (trace_events.JOB_SUBMIT,
                         trace_events.JOB_ADMIT,
                         trace_events.JOB_WINDOW,
                         trace_events.JOB_SHARD,
                         trace_events.JOB_SEGMENT,
                         trace_events.JOB_MERGE,
                         trace_events.JOB_COMPLETE):
            assert expected in kinds, expected
        assert len(sink.events) == len(events)
