"""Epoch model: stationary behaviour, control-loop transients."""

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.perf.epoch import EpochModel
from repro.workloads.zipf import ZipfGenerator


def route_ids(alpha, n, seed=1):
    batch = ZipfGenerator(alpha=alpha, seed=seed).generate(n)
    return (batch.keys % np.uint64(16)).astype(np.int64)


class TestStationary:
    def test_uniform_runs_at_bandwidth(self):
        model = EpochModel(ArchitectureConfig(), window_tuples=16_384)
        result = model.run(route_ids(0.0, 100_000))
        assert result.tuples_per_cycle > 7.0

    def test_skew_collapses_without_secpes(self):
        model = EpochModel(ArchitectureConfig())
        result = model.run(route_ids(3.0, 100_000))
        assert result.tuples_per_cycle < 0.7

    def test_secpes_recover_throughput(self):
        cfg = ArchitectureConfig(secpes=15, reschedule_threshold=0.0)
        model = EpochModel(cfg)
        result = model.run(route_ids(3.0, 100_000))
        assert result.tuples_per_cycle > 6.0
        assert len(result.plans) == 1

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            EpochModel(ArchitectureConfig()).run(np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError):
            EpochModel(ArchitectureConfig(), window_tuples=0)

    def test_throughput_mtps_scales_with_frequency(self):
        model = EpochModel(ArchitectureConfig())
        result = model.run(route_ids(0.0, 50_000))
        assert result.throughput_mtps(200.0) == pytest.approx(
            2 * result.throughput_mtps(100.0))


class TestControlLoop:
    def test_distribution_change_triggers_reschedule(self):
        a = route_ids(3.0, 60_000, seed=11)
        b = route_ids(3.0, 60_000, seed=99)
        stream = np.concatenate([a, b])
        cfg = ArchitectureConfig(secpes=15, reschedule_threshold=0.5,
                                 reenqueue_delay_cycles=1_000)
        model = EpochModel(cfg, window_tuples=8_192)
        result = model.run(stream)
        assert result.reschedules >= 1
        assert len(result.plans) >= 2

    def test_threshold_zero_keeps_single_plan(self):
        a = route_ids(3.0, 60_000, seed=11)
        b = route_ids(3.0, 60_000, seed=99)
        cfg = ArchitectureConfig(secpes=15, reschedule_threshold=0.0)
        model = EpochModel(cfg)
        result = model.run(np.concatenate([a, b]))
        assert result.reschedules == 0
        assert len(result.plans) == 1

    def test_rescheduling_beats_stale_plan(self):
        """With the hot PE moving, re-planning must win over a frozen
        plan despite the re-enqueue cost."""
        parts = [route_ids(3.0, 80_000, seed=s) for s in (5, 17, 29)]
        stream = np.concatenate(parts)
        on = ArchitectureConfig(secpes=15, reschedule_threshold=0.5,
                                reenqueue_delay_cycles=2_000)
        off = ArchitectureConfig(secpes=15, reschedule_threshold=0.0)
        rate_on = EpochModel(on).run(stream).tuples_per_cycle
        rate_off = EpochModel(off).run(stream).tuples_per_cycle
        assert rate_on > rate_off


class TestRunShares:
    def test_matches_run_on_stationary_stream(self):
        ids = route_ids(2.0, 200_000)
        cfg = ArchitectureConfig(secpes=8, reschedule_threshold=0.0)
        shares = np.bincount(ids, minlength=16) / ids.size
        a = EpochModel(cfg).run(ids).tuples_per_cycle
        b = EpochModel(cfg).run_shares(shares, ids.size).tuples_per_cycle
        assert a == pytest.approx(b, rel=0.15)
