"""Epoch-model internals: arrival splitting and queue advancement."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.config import ArchitectureConfig
from repro.core.profiler import SchedulingPlan, greedy_secpe_plan
from repro.perf.epoch import EpochModel


@pytest.fixture
def model():
    return EpochModel(ArchitectureConfig(secpes=15,
                                         reschedule_threshold=0.0))


class TestSplitArrivals:
    def test_identity_without_plan(self, model):
        counts = np.arange(16, dtype=float)
        arrivals = model._split_arrivals(counts, None, 31)
        assert np.array_equal(arrivals[:16], counts)
        assert arrivals[16:].sum() == 0

    def test_plan_splits_round_robin(self, model):
        counts = np.zeros(16)
        counts[3] = 90.0
        plan = SchedulingPlan(pairs=[(16, 3), (17, 3)])
        arrivals = model._split_arrivals(counts, plan, 31)
        assert arrivals[3] == pytest.approx(30.0)
        assert arrivals[16] == pytest.approx(30.0)
        assert arrivals[17] == pytest.approx(30.0)

    @given(st.lists(st.integers(min_value=0, max_value=5_000),
                    min_size=16, max_size=16),
           st.integers(min_value=0, max_value=15))
    def test_property_mass_conserved(self, raw, secpes):
        model = EpochModel(ArchitectureConfig(secpes=15))
        counts = np.asarray(raw, dtype=float)
        plan = greedy_secpe_plan(counts, secpes) if secpes else None
        arrivals = model._split_arrivals(counts, plan, 31)
        assert arrivals.sum() == pytest.approx(counts.sum())
        assert (arrivals >= 0).all()


class TestAdvance:
    def test_bandwidth_bound_when_balanced(self, model):
        backlog = np.zeros(31)
        arrivals = np.full(31, 100.0)
        cycles = model._advance(backlog, arrivals, tuples=3100)
        assert cycles == pytest.approx(3100 / 8)

    def test_hot_pe_extends_window(self, model):
        cfg = model.config
        backlog = np.zeros(31)
        arrivals = np.zeros(31)
        arrivals[0] = 10_000.0
        cycles = model._advance(backlog, arrivals, tuples=10_000)
        expected = (10_000 - cfg.channel_depth) * cfg.ii_pe
        assert cycles == pytest.approx(expected)
        # The channel keeps exactly `depth` tuples backlogged.
        assert backlog[0] == pytest.approx(cfg.channel_depth)

    def test_backlog_drains_when_arrivals_stop(self, model):
        backlog = np.full(31, 100.0)
        arrivals = np.zeros(31)
        model._advance(backlog, arrivals, tuples=8_000)
        assert backlog.sum() == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=10_000),
                    min_size=4, max_size=31),
           st.integers(min_value=1, max_value=20_000))
    def test_property_backlog_never_exceeds_depth_after_window(
            self, raw, tuples):
        model = EpochModel(ArchitectureConfig(secpes=15))
        arrivals = np.asarray(raw)
        backlog = np.zeros(arrivals.size)
        model._advance(backlog, arrivals, tuples=tuples)
        assert (backlog <= model.config.channel_depth + 1e-6).all()
        assert (backlog >= 0).all()
