"""Evolving-skew regime model (Fig. 9)."""

import pytest

from repro.core.config import ArchitectureConfig
from repro.perf.evolving import EvolvingSkewModel, fig9_intervals


@pytest.fixture
def model():
    cfg = ArchitectureConfig(
        secpes=15, channel_depth=512, monitor_window=2048,
        profiling_cycles=256,
        reenqueue_delay_cycles=94_000,    # 0.5 ms at 188 MHz
    )
    return EvolvingSkewModel(config=cfg, frequency_mhz=188.0)


class TestComponents:
    def test_planned_rate_near_bandwidth(self, model):
        assert model.planned_rate > 7.0

    def test_unaided_rate_is_skewed_rate(self, model):
        assert model.unaided_rate == pytest.approx(1 / (2 * 0.83), rel=1e-6)

    def test_stale_plan_rate_between_unaided_and_planned(self, model):
        assert model.unaided_rate < model.stale_plan_rate < model.planned_rate

    def test_invalid_interval_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate(0.0)


class TestRegimes:
    def test_satiates_at_16ms_and_above(self, model):
        """Paper: 'the throughput is able to satiate the network
        bandwidth when the time interval is larger than 16 ms'."""
        for interval in [512e-3, 64e-3, 16e-3]:
            point = model.evaluate(interval)
            assert point.throughput_gbps > 85.0
            assert point.regime == "amortised"

    def test_trough_in_the_middle(self, model):
        """Between ~1 ms and ~1 us the rescheduling overhead dominates."""
        point = model.evaluate(100e-6)
        assert point.throughput_gbps < 40.0

    def test_stopped_regime_beats_baseline(self, model):
        """Even with rescheduling stopped, Ditto stays above the
        no-skew-handling baseline (Fig. 9's 'consistently better')."""
        point = model.evaluate(1e-6)
        assert point.regime == "stopped"
        assert point.reschedules == 0
        assert point.throughput_gbps > model.baseline_gbps()

    def test_recovers_below_64ns(self, model):
        """'The throughput increases to meet the bandwidth again' once
        bursts fit in the channels."""
        point = model.evaluate(32e-9)
        assert point.regime == "absorbed"
        assert point.throughput_gbps > 85.0

    def test_regime_boundaries_roughly_match_paper(self, model):
        """Satiated >= 16 ms, recovered <= 64 ns, degraded in between."""
        assert model.evaluate(16e-3).throughput_gbps > 85.0
        assert model.evaluate(64e-9).throughput_gbps > 85.0
        mid = model.evaluate(50e-6).throughput_gbps
        assert mid < 50.0

    def test_reschedule_counts_shape(self, model):
        """Counts grow as intervals shrink (while rescheduling is still
        worthwhile), then drop to zero when the system stops."""
        slow = model.evaluate(512e-3)
        faster = model.evaluate(4e-3)
        stopped = model.evaluate(1e-6)
        assert slow.reschedules < faster.reschedules
        assert stopped.reschedules == 0


class TestSweep:
    def test_fig9_axis_covers_512ms_to_16ns(self):
        intervals = fig9_intervals()
        assert intervals[0] == pytest.approx(512e-3)
        assert intervals[-1] == pytest.approx(16e-9, rel=1e-3)
        assert len(intervals) == 26

    def test_sweep_returns_point_per_interval(self, model):
        points = model.sweep(fig9_intervals())
        assert len(points) == 26
        assert all(0 < p.throughput_gbps <= 100.0 for p in points)
