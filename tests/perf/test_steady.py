"""Steady-state model: the DESIGN.md §4 identities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.profiler import SchedulingPlan, greedy_secpe_plan
from repro.perf.steady import effective_shares, steady_rate, steady_throughput_mtps


UNIFORM16 = np.full(16, 1 / 16)


class TestIdentities:
    def test_uniform_is_bandwidth_bound_at_8(self):
        assert steady_rate(UNIFORM16) == pytest.approx(8.0)

    def test_all_on_one_pe_is_half_tuple_per_cycle(self):
        """§II: extreme skew = 1/16 of uniform -> 0.5 t/c."""
        shares = np.zeros(16)
        shares[0] = 1.0
        assert steady_rate(shares) == pytest.approx(0.5)

    def test_fifteen_secpes_restore_bandwidth(self):
        """16P+15S 'is oblivious to any skew' (§VI-C1)."""
        shares = np.zeros(16)
        shares[0] = 1.0
        assert steady_rate(shares, secpes=15) == pytest.approx(8.0)

    def test_paper_headline_12x(self):
        """16x rate recovery x (188/246 clock) ~ 12x end-to-end — the
        paper's Fig. 7 maximum speedup."""
        shares = np.zeros(16)
        shares[0] = 1.0
        base = steady_throughput_mtps(shares, 246.0)
        helped = steady_throughput_mtps(shares, 188.0, secpes=15)
        assert helped / base == pytest.approx(12.2, abs=0.3)

    def test_zipf3_shares_give_one_sixteenthish(self):
        shares = np.full(16, 0.17 / 15)
        shares[5] = 0.83
        rate = steady_rate(shares)
        assert rate == pytest.approx(1 / (2 * 0.83), rel=1e-6)


class TestEffectiveShares:
    def test_no_plan_returns_shares(self):
        shares = np.array([0.5, 0.5])
        assert np.array_equal(effective_shares(shares), shares)

    def test_plan_splits_hot_pe(self):
        shares = np.array([0.7, 0.3])
        plan = SchedulingPlan(pairs=[(2, 0)])
        loads = effective_shares(shares, plan)
        assert loads[0] == pytest.approx(0.35)   # PriPE 0 halved
        assert loads[2] == pytest.approx(0.35)   # SecPE slice
        assert loads[1] == pytest.approx(0.3)

    def test_loads_conserve_total(self):
        shares = np.array([0.6, 0.25, 0.15, 0.0])
        plan = greedy_secpe_plan(shares, 3)
        loads = effective_shares(shares, plan)
        assert loads.sum() == pytest.approx(1.0)


class TestValidationAndBounds:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            steady_rate(np.zeros(0))

    def test_zero_shares_bandwidth_bound(self):
        assert steady_rate(np.zeros(4), lanes=8) == 8.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=2, max_size=16),
           st.integers(min_value=0, max_value=15))
    def test_property_rate_bounds_and_monotone_in_secpes(self, raw, secpes):
        shares = np.asarray(raw)
        if shares.sum() == 0:
            shares[0] = 1.0
        shares = shares / shares.sum()
        secpes = min(secpes, len(shares) - 1)
        base = steady_rate(shares, secpes=0)
        helped = steady_rate(shares, secpes=secpes)
        assert 0 < base <= 8.0
        assert helped >= base - 1e-12       # SecPEs never hurt rate
        assert helped <= 8.0
