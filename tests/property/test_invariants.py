"""Cross-cutting property-based invariants of the whole system.

These run the *full* cycle-level architecture under hypothesis-generated
workloads and configurations and assert the properties the paper's
correctness rests on: no tuple is lost or duplicated, results equal the
sequential golden regardless of scheduling, and skew handling never
makes things worse.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.histo import HistogramKernel
from repro.core.architecture import SkewObliviousArchitecture
from repro.core.config import ArchitectureConfig
from repro.core.profiler import greedy_secpe_plan
from repro.perf.steady import effective_shares, steady_rate
from repro.workloads.tuples import TupleBatch


slow = settings(
    deadline=None,
    max_examples=12,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@slow
@given(
    keys=st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                  min_size=32, max_size=600),
    secpes=st.sampled_from([0, 1, 3, 7, 15]),
)
def test_architecture_result_equals_golden_for_any_workload(keys, secpes):
    """End-to-end determinism: whatever the key stream and SecPE count,
    the merged result is bit-identical to the sequential reference."""
    kernel = HistogramKernel(bins=256, pripes=16)
    batch = TupleBatch.from_keys(np.array(keys, dtype=np.uint64))
    config = ArchitectureConfig(secpes=secpes, reschedule_threshold=0.0,
                                profiling_cycles=16)
    arch = SkewObliviousArchitecture(config, kernel)
    outcome = arch.run(batch, max_cycles=5_000_000)
    assert np.array_equal(outcome.result,
                          kernel.golden(batch.keys, batch.values))
    assert sum(outcome.pe_tuple_counts.values()) == len(batch)


@slow
@given(
    keys=st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                  min_size=64, max_size=400),
)
def test_rescheduling_never_corrupts_results(keys):
    """Aggressive monitor thresholds cause detach/merge/re-enqueue churn;
    the merged histogram must still be exact."""
    kernel = HistogramKernel(bins=128, pripes=16)
    batch = TupleBatch.from_keys(np.array(keys, dtype=np.uint64))
    config = ArchitectureConfig(
        secpes=7, reschedule_threshold=0.95, monitor_window=64,
        profiling_cycles=16, reenqueue_delay_cycles=32,
    )
    arch = SkewObliviousArchitecture(config, kernel)
    outcome = arch.run(batch, max_cycles=5_000_000)
    assert np.array_equal(outcome.result,
                          kernel.golden(batch.keys, batch.values))


@given(
    shares=st.lists(st.floats(min_value=0.001, max_value=1.0),
                    min_size=4, max_size=16),
    secpes=st.integers(min_value=0, max_value=15),
)
def test_greedy_plan_never_increases_bottleneck(shares, secpes):
    """Planning is monotone: each extra SecPE weakly reduces the max
    effective load, hence weakly increases the steady rate."""
    shares = np.asarray(shares)
    shares = shares / shares.sum()
    m = len(shares)
    secpes = min(secpes, m - 1)
    previous_rate = 0.0
    for x in range(secpes + 1):
        plan = greedy_secpe_plan(shares, x)
        rate = steady_rate(shares, plan=plan)
        assert rate >= previous_rate - 1e-12
        previous_rate = rate


@given(
    shares=st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=2, max_size=16),
    secpes=st.integers(min_value=0, max_value=15),
)
def test_effective_shares_conserve_mass(shares, secpes):
    """Splitting a PriPE's share across SecPEs is mass-preserving."""
    shares = np.asarray(shares)
    if shares.sum() == 0:
        shares[0] = 1.0
    shares = shares / shares.sum()
    secpes = min(secpes, len(shares) - 1)
    plan = greedy_secpe_plan(shares, secpes)
    loads = effective_shares(shares, plan)
    assert loads.sum() == np.float64(1.0) or abs(loads.sum() - 1.0) < 1e-9
    assert (loads >= -1e-12).all()
