"""Device description: the totals implied by Table III's percentages."""

import pytest

from repro.resources.calibration import TABLE3_MEASUREMENTS
from repro.resources.device import ARRIA10_GX1150, PAC_PLATFORM


class TestDeviceTotals:
    def test_table3_percentages_are_consistent(self):
        """Every Table III row's counts/percentage pair implies the same
        device totals we encode: 427,200 ALMs, 2,713 M20Ks, 1,518 DSPs."""
        # Note: the paper prints 32P logic as "230,838 (60%)", but
        # 230,838 / 427,200 = 54% — the percentage is a typo in the
        # paper (all six other rows imply the 427,200-ALM total), so the
        # consistent 0.54 is used here.
        reported_fractions = {
            (16, 0): (0.38, 0.22, 0.27),
            (32, 0): (0.54, 0.69, 0.48),
            (16, 15): (0.54, 0.78, 0.43),
        }
        for key, (logic_pct, ram_pct, dsp_pct) in reported_fractions.items():
            row = TABLE3_MEASUREMENTS[key]
            assert row.logic_alms / ARRIA10_GX1150.alms == pytest.approx(
                logic_pct, abs=0.01)
            assert row.ram_blocks / ARRIA10_GX1150.m20k_blocks == pytest.approx(
                ram_pct, abs=0.01)
            assert row.dsp_blocks / ARRIA10_GX1150.dsp_blocks == pytest.approx(
                dsp_pct, abs=0.01)

    def test_bram_bits_match_65_7_mb(self):
        assert ARRIA10_GX1150.bram_bits == pytest.approx(65.7e6)

    def test_ram_blocks_for_bits_ceils(self):
        assert ARRIA10_GX1150.ram_blocks_for_bits(1) == 1
        assert ARRIA10_GX1150.ram_blocks_for_bits(20 * 1024) == 1
        assert ARRIA10_GX1150.ram_blocks_for_bits(20 * 1024 + 1) == 2
        assert ARRIA10_GX1150.ram_blocks_for_bits(0) == 0


class TestPlatform:
    def test_eight_lanes_for_8_byte_tuples(self):
        """W_mem / W_tuple = 512 / 64 = 8 (the paper's N)."""
        assert PAC_PLATFORM.lanes_for_tuple_bytes(8) == 8

    def test_wider_tuples_fewer_lanes(self):
        assert PAC_PLATFORM.lanes_for_tuple_bytes(16) == 4
        assert PAC_PLATFORM.lanes_for_tuple_bytes(64) == 1
        assert PAC_PLATFORM.lanes_for_tuple_bytes(128) == 1   # floor 1

    def test_rejects_bad_tuple_size(self):
        with pytest.raises(ValueError):
            PAC_PLATFORM.lanes_for_tuple_bytes(0)
