"""Resource estimator: monotonicity, calibration passthrough, §V-C
capacity accounting."""

import pytest

from repro.apps.hyperloglog import HyperLogLogKernel
from repro.resources.estimator import ResourceEstimator


@pytest.fixture
def est():
    return ResourceEstimator()


class TestStructuralModel:
    def test_rejects_invalid_shapes(self, est):
        with pytest.raises(ValueError):
            est.estimate(0, 0, 8)
        with pytest.raises(ValueError):
            est.estimate(16, 16, 8)          # X > M-1
        with pytest.raises(ValueError):
            est.estimate(16, -1, 8)

    def test_ram_monotone_in_secpes(self, est):
        values = [est.estimate(16, x, 8).ram_blocks for x in range(16)]
        assert values == sorted(values)

    def test_logic_monotone_in_secpes(self, est):
        values = [est.estimate(16, x, 8).logic_alms for x in [0, 4, 8, 15]]
        assert values == sorted(values)

    def test_growth_is_not_proportional(self, est):
        """Paper §VI-C1: resource consumption grows with SecPEs 'but not
        proportional due to the static resource consumption of the
        built-in shell'."""
        base = est.estimate(16, 0, 8).ram_blocks
        full = est.estimate(16, 15, 8).ram_blocks
        pes_ratio = 31 / 16
        assert 1.0 < full / base < 2 * pes_ratio
        assert full / base != pytest.approx(pes_ratio, rel=0.01)

    def test_skew_infrastructure_charged_only_with_secpes(self, est):
        without = est.estimate(16, 0, 8)
        with_one = est.estimate(16, 1, 8)
        # Jump includes profiler (~6% logic per the paper) + mappers.
        delta_logic = with_one.logic_alms - without.logic_alms
        assert delta_logic > 0.05 * est.platform.device.alms

    def test_fractions_match_counts(self, est):
        e = est.estimate(16, 4, 8)
        device = est.platform.device
        assert e.ram_fraction == pytest.approx(e.ram_blocks / device.m20k_blocks,
                                               abs=1e-3)
        assert not e.exceeds_device()


class TestCalibratedPassthrough:
    def test_known_configs_return_paper_numbers(self, est):
        e = est.estimate_calibrated(16, 15, 8)
        assert e.measured
        assert e.ram_blocks == 2_129
        assert e.logic_alms == 230_095
        assert e.dsp_blocks == 658

    def test_unknown_configs_fall_back_to_model(self, est):
        e = est.estimate_calibrated(16, 3, 8)
        assert not e.measured

    def test_structural_model_tracks_table3_within_2x(self, est):
        """The structural model cannot match P&R exactly, but every
        Table III row must be reproduced within a factor of 2."""
        profile = HyperLogLogKernel(precision=14, pripes=16).resource_profile()
        for (m, x) in [(16, 0), (16, 1), (16, 4), (16, 15), (32, 0)]:
            measured = est.estimate_calibrated(m, x, 8, profile)
            lanes = 8 if m == 16 else 16
            modelled = est.estimate(m, x, lanes, profile)
            assert 0.5 < modelled.ram_blocks / measured.ram_blocks < 2.0
            assert 0.5 < modelled.logic_alms / measured.logic_alms < 2.0


class TestCapacityAnalysis:
    def test_distinct_capacity_fraction(self, est):
        """§V-C: M/(M+X) of the budget holds distinct data; X = M-1
        still guarantees half."""
        assert est.distinct_capacity_fraction(16, 0) == 1.0
        assert est.distinct_capacity_fraction(16, 16 - 1) == pytest.approx(
            16 / 31)
        assert est.distinct_capacity_fraction(16, 15) > 0.5

    def test_distinct_capacity_validation(self, est):
        with pytest.raises(ValueError):
            est.distinct_capacity_fraction(0, 0)
        with pytest.raises(ValueError):
            est.distinct_capacity_fraction(4, -1)

    def test_bram_saving_vs_replication(self, est):
        """16 PEs with double-buffered replicas = the paper's 32x."""
        assert est.bram_saving_vs_replication(16, 2) == 32.0
        assert est.bram_saving_vs_replication(16, 1) == 16.0
        with pytest.raises(ValueError):
            est.bram_saving_vs_replication(0)
