"""Frequency model: measured passthrough and analytic behaviour."""

import pytest

from repro.resources.calibration import TABLE3_MEASUREMENTS
from repro.resources.estimator import ResourceEstimator
from repro.resources.frequency import FrequencyModel


@pytest.fixture
def model():
    return FrequencyModel()

@pytest.fixture
def est():
    return ResourceEstimator()


def test_measured_configs_return_paper_fmax(model, est):
    for (m, x), row in TABLE3_MEASUREMENTS.items():
        lanes = 8 if m == 16 else 16
        estimate = est.estimate_calibrated(m, x, lanes)
        assert model.predict(estimate) == row.frequency_mhz

def test_label_parsing_handles_both_forms(model):
    assert FrequencyModel._measured_for_label("16P") == 246.0
    assert FrequencyModel._measured_for_label("16P+2S") == 180.0
    assert FrequencyModel._measured_for_label("24P") is None
    assert FrequencyModel._measured_for_label("widget") is None

def test_analytic_model_is_deterministic(model, est):
    e = est.estimate(24, 0, 8)
    assert model.predict(e) == model.predict(e)

def test_analytic_model_degrades_with_utilisation(est):
    model = FrequencyModel(jitter_mhz=0.0)
    light = est.estimate(16, 0, 8)
    heavy = est.estimate(16, 15, 8)
    assert model.predict(heavy) < model.predict(light)

def test_floor_clamps(est):
    model = FrequencyModel(base_mhz=100.0, logic_penalty_mhz=500.0,
                           floor_mhz=120.0, jitter_mhz=0.0)
    e = est.estimate(16, 15, 8)
    assert model.predict(e) == 120.0

def test_predictions_in_plausible_fpga_range(model, est):
    for m, x in [(16, 3), (16, 7), (24, 0), (8, 2)]:
        e = est.estimate(m, x, 8)
        assert 120.0 <= model.predict(e) <= 300.0
