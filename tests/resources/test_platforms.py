"""Platform portability (§V-A): the Xilinx migration is configuration."""


from repro.ditto.generator import SystemGenerator, tune_pe_counts
from repro.ditto.spec import histogram_spec
from repro.resources.device import (
    PAC_PLATFORM,
    XILINX_U250,
    XILINX_U250_PLATFORM,
)
from repro.resources.estimator import ResourceEstimator


class TestXilinxPlatform:
    def test_device_inventory(self):
        assert XILINX_U250.alms > 0
        assert XILINX_U250.dsp_blocks > PAC_PLATFORM.device.dsp_blocks

    def test_eq1_holds_on_both_platforms(self):
        """Same 512-bit interface -> same N and M; the tuning formula is
        platform data, not platform code."""
        intel = tune_pe_counts(histogram_spec(), PAC_PLATFORM)
        xilinx = tune_pe_counts(histogram_spec(), XILINX_U250_PLATFORM)
        assert intel.lanes == xilinx.lanes == 8
        assert intel.pripes == xilinx.pripes == 16

    def test_generator_runs_against_xilinx(self):
        gen = SystemGenerator(platform=XILINX_U250_PLATFORM,
                              use_measured_builds=False)
        impls = gen.generate(histogram_spec(), secpe_counts=[0, 4, 15])
        assert [im.label for im in impls] == ["16P", "16P+4S", "16P+15S"]
        rams = [im.resources.ram_blocks for im in impls]
        assert rams == sorted(rams)
        # No Table III data exists for this platform: nothing measured.
        assert not any(im.resources.measured for im in impls)

    def test_estimator_uses_platform_shell(self):
        intel = ResourceEstimator(platform=PAC_PLATFORM)
        xilinx = ResourceEstimator(platform=XILINX_U250_PLATFORM)
        a = intel.estimate(16, 0, 8)
        b = xilinx.estimate(16, 0, 8)
        assert a.ram_blocks != b.ram_blocks        # different shells
        # Fractions are against each device's own totals.
        assert 0 < b.ram_fraction < 1
        assert b.dsp_fraction < a.dsp_fraction     # U250 has far more DSPs

    def test_wider_memory_interface_changes_eq1(self):
        from dataclasses import replace
        wide = replace(XILINX_U250_PLATFORM, memory_interface_bits=1024)
        cfg = tune_pe_counts(histogram_spec(), wide)
        assert cfg.lanes == 16
        assert cfg.pripes == 32
