"""Streaming sessions: result accumulation across segments."""

import numpy as np
import pytest

from repro.apps.heavy_hitter import HeavyHitterKernel
from repro.apps.histo import HistogramKernel
from repro.apps.hyperloglog import HyperLogLogKernel
from repro.apps.partition import PartitionKernel
from repro.core.config import ArchitectureConfig
from repro.core.kernel import KernelSpec
from repro.runtime import StreamingSession
from repro.workloads.evolving import EvolvingZipfStream
from repro.workloads.zipf import ZipfGenerator


def make_session(kernel, secpes=8, threshold=0.0):
    return StreamingSession(
        config=ArchitectureConfig(secpes=secpes,
                                  reschedule_threshold=threshold),
        kernel=kernel,
    )


class TestHistogramSession:
    def test_running_histogram_equals_batch_of_everything(self):
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel)
        segments = [
            ZipfGenerator(alpha=a, seed=50 + i).generate(5_000)
            for i, a in enumerate([0.5, 2.0, 3.0])
        ]
        for segment in segments:
            session.process(segment)
        merged = segments[0].concat(segments[1]).concat(segments[2])
        golden = kernel.golden(merged.keys, merged.values)
        assert np.array_equal(session.result, golden)
        assert session.total_tuples == 15_000

    def test_history_records_each_segment(self):
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel)
        for i in range(3):
            record = session.process(
                ZipfGenerator(alpha=1.0, seed=i).generate(3_000))
            assert record.index == i
            assert record.tuples == 3_000
        assert len(session.history) == 3
        assert 0 < session.average_throughput() <= 8.0

    def test_per_segment_throughput_records_are_complete(self):
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel, secpes=8, threshold=0.0)
        record = session.process(
            ZipfGenerator(alpha=2.0, seed=4).generate(4_000))
        assert record.cycles > 0
        assert record.tuples_per_cycle == pytest.approx(
            record.tuples / record.cycles)
        assert record.plans >= 1      # skew handling planned at least once
        assert record.reschedules == 0  # threshold 0 disables monitoring
        assert session.total_cycles == record.cycles


class TestHeavyHitterSession:
    def test_hitter_estimates_accumulate_across_segments(self):
        from repro.workloads.tuples import TupleBatch

        kernel = HeavyHitterKernel(threshold=200, pripes=16)
        session = make_session(kernel)
        rng = np.random.default_rng(12)
        for _ in range(3):  # 500 hot + 2000 noise tuples per segment
            keys = np.concatenate([
                np.full(500, 0xBEEF, dtype=np.uint64),
                rng.integers(0, 1 << 32, 2_000, dtype=np.uint64),
            ])
            rng.shuffle(keys)
            session.process(TupleBatch.from_keys(keys))
        assert 0xBEEF in session.result
        # Count-min estimates are upper bounds, so their sum is too.
        assert session.result[0xBEEF] >= 1_500


class TestMergeFrom:
    def test_partial_sessions_merge_like_one_session(self):
        """Two workers' partial streams merge into the whole-stream
        result (the serving layer's cross-worker collection path)."""
        batch = ZipfGenerator(alpha=1.5, seed=21).generate(8_000)
        kernel = HistogramKernel(bins=256, pripes=16)

        left = make_session(HistogramKernel(bins=256, pripes=16))
        right = make_session(HistogramKernel(bins=256, pripes=16))
        left.process(batch.slice(0, 4_000))
        right.process(batch.slice(4_000, 8_000))

        merged = make_session(HistogramKernel(bins=256, pripes=16))
        merged.merge_from(left)
        merged.merge_from(right)

        golden = kernel.golden(batch.keys, batch.values)
        assert np.array_equal(merged.result, golden)
        assert merged.total_tuples == 8_000
        assert [r.index for r in merged.history] == [0, 1]

    def test_merge_into_empty_adopts_result(self):
        source = make_session(HistogramKernel(bins=256, pripes=16))
        source.process(ZipfGenerator(alpha=0.5, seed=2).generate(2_000))
        empty = make_session(HistogramKernel(bins=256, pripes=16))
        empty.merge_from(source)
        assert np.array_equal(empty.result, source.result)

    def test_cross_application_merge_rejected(self):
        histo = make_session(HistogramKernel(bins=256, pripes=16))
        hll = make_session(HyperLogLogKernel(precision=10, pripes=16))
        with pytest.raises(ValueError, match="different applications"):
            histo.merge_from(hll)


class TestHLLSession:
    def test_running_cardinality_max_folds(self):
        kernel = HyperLogLogKernel(precision=10, pripes=16)
        session = make_session(kernel)
        a = ZipfGenerator(alpha=0.0, seed=1).generate(8_000)
        b = ZipfGenerator(alpha=0.0, seed=2).generate(8_000)
        session.process(a)
        session.process(b)
        merged = a.concat(b)
        golden = kernel.golden(merged.keys, merged.values)
        assert np.array_equal(session.result, golden)


class TestPartitionSession:
    def test_partitions_extend_across_segments(self):
        kernel = PartitionKernel(radix_bits_count=6, pripes=16)
        session = make_session(kernel, secpes=4)
        a = ZipfGenerator(alpha=1.0, seed=3).generate(3_000)
        b = ZipfGenerator(alpha=1.0, seed=4).generate(3_000)
        session.process(a)
        session.process(b)
        merged = a.concat(b)
        golden = kernel.golden(merged.keys, merged.values)
        assert set(session.result) == set(golden)
        for part in golden:
            assert sorted(session.result[part]) == sorted(golden[part])


class TestEvolvingSession:
    def test_adapts_across_distribution_changes(self):
        """An evolving alpha=3 stream: every segment re-profiles (fresh
        pipeline per segment) so throughput stays near the planned rate
        rather than the unaided one."""
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel, secpes=15)
        stream = EvolvingZipfStream(alpha=3.0, interval_tuples=6_000,
                                    total_tuples=18_000, base_seed=9)
        for segment in stream.segments():
            session.process(segment.batch)
        # Short segments pay the profiling + channel-drain transient
        # every time, so the rate sits well below the 7+ t/c steady
        # state — but far above the unaided 0.6 t/c.
        assert session.average_throughput() > 1.5
        golden = kernel.golden(stream.materialize().keys,
                               np.zeros(18_000))
        assert np.array_equal(session.result, golden)


class TestCombineDefaults:
    def test_base_kernel_combiner_is_loud(self):
        class Bare(KernelSpec):
            def route(self, key):
                return 0

            def make_buffer(self):
                return []

            def process(self, buffer, key, value):
                pass

        with pytest.raises(NotImplementedError, match="combiner"):
            Bare().combine_results(1, 2)
