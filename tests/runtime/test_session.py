"""Streaming sessions: result accumulation across segments."""

import numpy as np
import pytest

from repro.apps.histo import HistogramKernel
from repro.apps.hyperloglog import HyperLogLogKernel
from repro.apps.partition import PartitionKernel
from repro.core.config import ArchitectureConfig
from repro.core.kernel import KernelSpec
from repro.runtime import StreamingSession
from repro.workloads.evolving import EvolvingZipfStream
from repro.workloads.zipf import ZipfGenerator


def make_session(kernel, secpes=8, threshold=0.0):
    return StreamingSession(
        config=ArchitectureConfig(secpes=secpes,
                                  reschedule_threshold=threshold),
        kernel=kernel,
    )


class TestHistogramSession:
    def test_running_histogram_equals_batch_of_everything(self):
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel)
        segments = [
            ZipfGenerator(alpha=a, seed=50 + i).generate(5_000)
            for i, a in enumerate([0.5, 2.0, 3.0])
        ]
        for segment in segments:
            session.process(segment)
        merged = segments[0].concat(segments[1]).concat(segments[2])
        golden = kernel.golden(merged.keys, merged.values)
        assert np.array_equal(session.result, golden)
        assert session.total_tuples == 15_000

    def test_history_records_each_segment(self):
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel)
        for i in range(3):
            record = session.process(
                ZipfGenerator(alpha=1.0, seed=i).generate(3_000))
            assert record.index == i
            assert record.tuples == 3_000
        assert len(session.history) == 3
        assert 0 < session.average_throughput() <= 8.0


class TestHLLSession:
    def test_running_cardinality_max_folds(self):
        kernel = HyperLogLogKernel(precision=10, pripes=16)
        session = make_session(kernel)
        a = ZipfGenerator(alpha=0.0, seed=1).generate(8_000)
        b = ZipfGenerator(alpha=0.0, seed=2).generate(8_000)
        session.process(a)
        session.process(b)
        merged = a.concat(b)
        golden = kernel.golden(merged.keys, merged.values)
        assert np.array_equal(session.result, golden)


class TestPartitionSession:
    def test_partitions_extend_across_segments(self):
        kernel = PartitionKernel(radix_bits_count=6, pripes=16)
        session = make_session(kernel, secpes=4)
        a = ZipfGenerator(alpha=1.0, seed=3).generate(3_000)
        b = ZipfGenerator(alpha=1.0, seed=4).generate(3_000)
        session.process(a)
        session.process(b)
        merged = a.concat(b)
        golden = kernel.golden(merged.keys, merged.values)
        assert set(session.result) == set(golden)
        for part in golden:
            assert sorted(session.result[part]) == sorted(golden[part])


class TestEvolvingSession:
    def test_adapts_across_distribution_changes(self):
        """An evolving alpha=3 stream: every segment re-profiles (fresh
        pipeline per segment) so throughput stays near the planned rate
        rather than the unaided one."""
        kernel = HistogramKernel(bins=256, pripes=16)
        session = make_session(kernel, secpes=15)
        stream = EvolvingZipfStream(alpha=3.0, interval_tuples=6_000,
                                    total_tuples=18_000, base_seed=9)
        for segment in stream.segments():
            session.process(segment.batch)
        # Short segments pay the profiling + channel-drain transient
        # every time, so the rate sits well below the 7+ t/c steady
        # state — but far above the unaided 0.6 t/c.
        assert session.average_throughput() > 1.5
        golden = kernel.golden(stream.materialize().keys,
                               np.zeros(18_000))
        assert np.array_equal(session.result, golden)


class TestCombineDefaults:
    def test_base_kernel_combiner_is_loud(self):
        class Bare(KernelSpec):
            def route(self, key):
                return 0

            def make_buffer(self):
                return []

            def process(self, buffer, key, value):
                pass

        with pytest.raises(NotImplementedError, match="combiner"):
            Bare().combine_results(1, 2)
