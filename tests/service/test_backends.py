"""Backend equivalence: inline threads vs warm worker subprocesses.

The execution-backend port's core promise is that the backend choice is
invisible in the results: given the same submit sequence, the inline
(thread) and process (pre-forked subprocess) adapters produce
bit-identical :class:`~repro.service.jobs.JobResult`s and identical
deterministic metrics snapshots — across every served app kernel and
through mid-job fleet resizes.

Snapshots are compared with the ``transport`` section stripped: it is
the one deliberately backend/transport-variant section (pipe shards
count copied bytes, shm shards count shared bytes, inline moves no
bytes at all); everything else must match exactly.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.service import SERVED_APPS, StreamService
from repro.service.executor import make_backend, validate_backend
from repro.service.pool import WorkItem
from repro.workloads.streams import chunk_stream
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator

BACKENDS = ("inline", "process")


def zipf_batch(tuples=6_000, alpha=1.5, seed=5):
    return ZipfGenerator(alpha=alpha, seed=seed).generate(tuples)


def pagerank_batch(vertices=256, tuples=4_000, seed=4):
    rng = np.random.default_rng(seed)
    return TupleBatch(
        keys=rng.integers(0, vertices, tuples).astype(np.uint64),
        values=rng.integers(0, vertices, tuples, dtype=np.int64),
    )


def app_workload(app):
    """(batch, params) serving one app its kind of stream."""
    if app == "pagerank":
        return pagerank_batch(), {"num_vertices": 256}
    return zipf_batch(), {}


def result_bits(job_result):
    """Canonical byte representation of a JobResult for comparison."""
    return pickle.dumps(dataclasses.astuple(job_result))


def comparable(snapshot):
    """A metrics snapshot minus its transport-variant counter section."""
    stripped = dict(snapshot)
    stripped.pop("transport", None)
    return stripped


def serve_one(backend, app, *, workers=4, stream=None, engine="fast",
              **service_kw):
    """Run one job on a fresh service; return (JobResult, metrics)."""
    batch, params = app_workload(app)
    service = StreamService(workers=workers, balancer="skew",
                            engine=engine, backend=backend, **service_kw)
    try:
        source = stream(service, batch) if stream is not None \
            else chunk_stream(batch, 2_000)
        job_id = service.submit(app, source, window_seconds=2e-6,
                                params=params, job_id=f"eq-{app}")
        service.run()
        result = service.result(job_id)
        snapshot = service.metrics.snapshot()
    finally:
        service.shutdown()
    return result, snapshot


class TestBackendEquivalence:
    @pytest.mark.parametrize("app", SERVED_APPS)
    def test_job_results_bit_identical_across_backends(self, app):
        inline, inline_metrics = serve_one("inline", app)
        process, process_metrics = serve_one("process", app)
        assert result_bits(inline) == result_bits(process)
        assert comparable(inline_metrics) == comparable(process_metrics)

    def test_cycle_engine_identical_across_backends(self):
        # The per-cycle simulator exercises a completely different
        # execution path in the child than the vectorised fast path.
        inline, _ = serve_one("inline", "histo", engine="cycle")
        process, _ = serve_one("process", "histo", engine="cycle")
        assert result_bits(inline) == result_bits(process)

    def test_per_tenant_metrics_identical(self):
        def run(backend):
            batch = zipf_batch()
            service = StreamService(workers=2, balancer="skew",
                                    backend=backend)
            try:
                for tenant in ("alice", "bob"):
                    from repro.service import TenantSpec
                    service.register_tenant(TenantSpec(tenant))
                    service.submit("histo", chunk_stream(batch, 2_000),
                                   window_seconds=2e-6,
                                   job_id=f"{tenant}-job",
                                   tenant_id=tenant)
                service.run()
                snapshot = service.metrics.snapshot()
            finally:
                service.shutdown()
            return snapshot

        assert comparable(run("inline")) == comparable(run("process"))


def resizing_stream(resize_to, at_chunk, chunk=1_500):
    """A source that resizes the fleet mid-job, from the dispatcher.

    The generator body runs on the dispatcher thread (the service pulls
    sources between windows), so it may drive the backend lifecycle the
    same way the autoscaler does: drain, then reconfigure-before-resize
    on shrink / resize-before-reconfigure on grow.
    """

    def stream(service, batch):
        for index, events in enumerate(chunk_stream(batch, chunk)):
            if index == at_chunk:
                service._pool.drain()
                if resize_to < service.balancer.workers:
                    service.balancer.reconfigure(resize_to)
                    service._pool.resize(resize_to)
                else:
                    service._pool.resize(resize_to)
                    service.balancer.reconfigure(resize_to)
            yield events

    return stream


class TestMidJobResize:
    @pytest.mark.parametrize("app", ("histo", "dp"))
    def test_grow_mid_job_identical(self, app):
        stream = resizing_stream(resize_to=4, at_chunk=2)
        inline, im = serve_one("inline", app, workers=2, stream=stream)
        process, pm = serve_one("process", app, workers=2, stream=stream)
        assert result_bits(inline) == result_bits(process)
        assert comparable(im) == comparable(pm)

    @pytest.mark.parametrize("app", ("histo", "hll"))
    def test_shrink_mid_job_identical(self, app):
        # Removed workers' partials survive as retained sessions
        # (inline) / handoff orphans (process); both must merge in the
        # same order.
        stream = resizing_stream(resize_to=2, at_chunk=2)
        inline, im = serve_one("inline", app, workers=4, stream=stream)
        process, pm = serve_one("process", app, workers=4, stream=stream)
        assert result_bits(inline) == result_bits(process)
        assert comparable(im) == comparable(pm)


class TestProcessBackendLifecycle:
    def test_worker_errors_propagate_from_children(self):
        # Keys >= num_vertices blow up inside the worker subprocess;
        # the failure must surface as a failed job with the same error
        # set the inline backend reports.
        def run(backend):
            batch = zipf_batch(tuples=2_000)
            service = StreamService(workers=2, balancer="skew",
                                    backend=backend)
            try:
                service.submit("pagerank", chunk_stream(batch, 1_000),
                               window_seconds=2e-6, job_id="bad",
                               params={"num_vertices": 64})
                service.run()
                status = service.poll("bad")
            finally:
                service.shutdown()
            return status

        inline = run("inline")
        process = run("process")
        assert inline["status"] == process["status"] == "failed"
        # Worker completion order is not deterministic in either
        # backend, so compare the error sets, not their order.
        assert sorted(inline["error"].split("; ")) \
            == sorted(process["error"].split("; "))

    def test_service_restart_with_process_backend(self):
        batch = zipf_batch(tuples=3_000)
        service = StreamService(workers=2, balancer="skew",
                                backend="process")
        try:
            service.submit("histo", chunk_stream(batch, 1_500),
                           window_seconds=2e-6, job_id="first")
            service.run()
            first = service.result("first")
            service.shutdown()  # children handed off and stopped
            service.submit("histo", chunk_stream(batch, 1_500),
                           window_seconds=2e-6, job_id="second")
            service.run()  # fresh warm fleet under a new generation
            second = service.result("second")
            assert np.array_equal(first.result, second.result)
        finally:
            service.shutdown()

    def test_make_backend_validates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            validate_backend("threads")
        with pytest.raises(ValueError, match="unknown backend"):
            StreamService(workers=2, backend="remote")

    def test_empty_job_collects_none_on_both_backends(self):
        from repro.service.executor import SessionSpec
        from repro.service.metrics import ServiceMetrics
        from repro.core.config import ArchitectureConfig

        config = ArchitectureConfig(lanes=8, pripes=16, secpes=0,
                                    reschedule_threshold=0.0)

        def spec_factory(job_id):
            return SessionSpec(app="histo", config=config)

        for backend in BACKENDS:
            pool = make_backend(backend, 2, spec_factory, ServiceMetrics())
            pool.start()
            try:
                empty = TupleBatch(np.array([], dtype=np.uint64),
                                   np.array([], dtype=np.int64))
                pool.dispatch(0, WorkItem("job", empty))
                pool.drain()
                assert pool.collect("job") is None, backend
            finally:
                pool.stop()
