"""Fleet balancers: sharding invariants and the greedy helper plan."""

import numpy as np
import pytest

from repro.core.profiler import plan_for_destinations, workload_histogram
from repro.service.balancer import (
    RoundRobinBalancer,
    SkewAwareBalancer,
    make_balancer,
    shard_of_keys,
)
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator


def multiset(batch: TupleBatch):
    return sorted(zip(batch.keys.tolist(), batch.values.tolist()))


def split_conserves_tuples(balancer, batch):
    parts = balancer.split(batch)
    combined = []
    for part in parts.values():
        combined.extend(multiset(part))
    assert sorted(combined) == multiset(batch)
    return parts


class TestSharding:
    def test_shards_cover_range_and_are_deterministic(self):
        keys = np.arange(10_000, dtype=np.uint64)
        shards = shard_of_keys(keys, 7)
        assert shards.min() >= 0 and shards.max() < 7
        assert np.array_equal(shards, shard_of_keys(keys, 7))

    def test_sharding_independent_of_low_key_bits(self):
        """Fleet sharding must not alias the kernels' `key % M` routing:
        consecutive keys (identical high bits) should spread widely."""
        keys = np.arange(64, dtype=np.uint64)
        assert len(np.unique(shard_of_keys(keys, 4))) == 4


class TestRoundRobin:
    def test_split_covers_all_workers_on_uniform_keys(self):
        balancer = RoundRobinBalancer(4)
        batch = ZipfGenerator(alpha=0.0, seed=3).generate(4_000)
        parts = split_conserves_tuples(balancer, batch)
        assert set(parts) == {0, 1, 2, 3}

    def test_static_assignment_keeps_keys_on_one_worker(self):
        balancer = RoundRobinBalancer(4)
        batch = TupleBatch.from_keys(
            np.full(100, 0xABCD, dtype=np.uint64))
        parts = balancer.split(batch)
        assert len(parts) == 1  # one key -> exactly one worker


class TestSkewAware:
    def test_defaults_reserve_secondaries(self):
        balancer = SkewAwareBalancer(8)
        assert balancer.primaries == 6
        assert balancer.secondaries == 2
        with pytest.raises(ValueError, match="at least one primary"):
            SkewAwareBalancer(4, secondaries=4)

    def test_single_worker_degenerates_to_static(self):
        balancer = SkewAwareBalancer(1)
        assert balancer.primaries == 1 and balancer.secondaries == 0
        batch = ZipfGenerator(alpha=2.0, seed=1).generate(1_000)
        balancer.observe(batch.keys)
        parts = balancer.split(batch)
        assert list(parts) == [0] and len(parts[0]) == 1_000

    def test_by_key_split_keeps_keys_whole(self):
        balancer = SkewAwareBalancer(4, secondaries=2)
        batch = ZipfGenerator(alpha=1.5, seed=6).generate(4_000)
        balancer.observe(batch.keys)
        parts = split_conserves_tuples(balancer, batch)  # tuple mode
        parts = balancer.split(batch, by_key=True)
        owners = {}
        for worker, part in parts.items():
            for key in np.unique(part.keys):
                assert owners.setdefault(int(key), worker) == worker

    def test_plan_attaches_helpers_to_hot_shard(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        hot = np.full(9_000, 0x51, dtype=np.uint64)
        cold = np.arange(1_000, dtype=np.uint64)
        keys = np.concatenate([hot, cold])
        balancer.observe(keys)
        hot_primary = int(shard_of_keys(hot[:1], balancer.primaries)[0])
        team = balancer.team_of(hot_primary)
        assert team[0] == hot_primary
        assert balancer.primaries in team  # secondary worker id = M

    def test_split_round_robins_hot_shard_across_team(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        hot = TupleBatch.from_keys(np.full(1_000, 0x51, dtype=np.uint64))
        balancer.observe(hot.keys)
        parts = split_conserves_tuples(balancer, hot)
        assert len(parts) == 2  # primary + its helper
        sizes = sorted(len(part) for part in parts.values())
        assert sizes == [500, 500]

    def test_rebalance_counted_when_hot_shard_moves(self):
        balancer = SkewAwareBalancer(6, secondaries=2)
        streams = [
            ZipfGenerator(alpha=3.0, seed=seed).generate(4_000).keys
            for seed in (1, 2, 3)
        ]
        for keys in streams:
            balancer.observe(keys)
        # Fresh hot keys land in fresh shards; at least one plan change.
        assert balancer.rebalances >= 1

    def test_identical_samples_yield_stable_plan(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        keys = ZipfGenerator(alpha=1.5, seed=9).generate(8_000).keys
        balancer.observe(keys)
        first = balancer.plan.pairs
        balancer.observe(keys)
        assert balancer.plan.pairs == first
        assert balancer.rebalances == 0


class TestProfilerExposure:
    def test_workload_histogram_counts_destinations(self):
        hist = workload_histogram([0, 1, 1, 3], pripes=4)
        assert hist.tolist() == [1, 2, 0, 1]
        with pytest.raises(ValueError, match=r"\[0, pripes\)"):
            workload_histogram([5], pripes=4)

    def test_plan_for_destinations_matches_manual_pipeline(self):
        destinations = [0] * 70 + [1] * 20 + [2] * 10
        plan = plan_for_destinations(destinations, secpes=2, pripes=3)
        # Both helpers go to the dominant destination: 70/3 > 20, 10.
        assert [pripe for _, pripe in plan.pairs] == [0, 0]


class TestFactory:
    def test_factory_names(self):
        assert isinstance(make_balancer("skew", 4), SkewAwareBalancer)
        assert isinstance(make_balancer("roundrobin", 4),
                          RoundRobinBalancer)
        with pytest.raises(ValueError, match="unknown balancer"):
            make_balancer("magic", 4)
