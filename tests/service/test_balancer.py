"""Fleet balancers: sharding invariants and the greedy helper plan."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.profiler import (
    SchedulingPlan,
    plan_for_destinations,
    workload_histogram,
)
from repro.service.balancer import (
    RoundRobinBalancer,
    SkewAwareBalancer,
    make_balancer,
    shard_of_keys,
)
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator


def multiset(batch: TupleBatch):
    return sorted(zip(batch.keys.tolist(), batch.values.tolist()))


def split_conserves_tuples(balancer, batch):
    parts = balancer.split(batch)
    combined = []
    for part in parts.values():
        combined.extend(multiset(part))
    assert sorted(combined) == multiset(batch)
    return parts


class TestSharding:
    def test_shards_cover_range_and_are_deterministic(self):
        keys = np.arange(10_000, dtype=np.uint64)
        shards = shard_of_keys(keys, 7)
        assert shards.min() >= 0 and shards.max() < 7
        assert np.array_equal(shards, shard_of_keys(keys, 7))

    def test_sharding_independent_of_low_key_bits(self):
        """Fleet sharding must not alias the kernels' `key % M` routing:
        consecutive keys (identical high bits) should spread widely."""
        keys = np.arange(64, dtype=np.uint64)
        assert len(np.unique(shard_of_keys(keys, 4))) == 4


class TestRoundRobin:
    def test_split_covers_all_workers_on_uniform_keys(self):
        balancer = RoundRobinBalancer(4)
        batch = ZipfGenerator(alpha=0.0, seed=3).generate(4_000)
        parts = split_conserves_tuples(balancer, batch)
        assert set(parts) == {0, 1, 2, 3}

    def test_static_assignment_keeps_keys_on_one_worker(self):
        balancer = RoundRobinBalancer(4)
        batch = TupleBatch.from_keys(
            np.full(100, 0xABCD, dtype=np.uint64))
        parts = balancer.split(batch)
        assert len(parts) == 1  # one key -> exactly one worker


class TestSkewAware:
    def test_defaults_reserve_secondaries(self):
        balancer = SkewAwareBalancer(8)
        assert balancer.primaries == 6
        assert balancer.secondaries == 2
        with pytest.raises(ValueError, match="at least one primary"):
            SkewAwareBalancer(4, secondaries=4)

    def test_single_worker_degenerates_to_static(self):
        balancer = SkewAwareBalancer(1)
        assert balancer.primaries == 1 and balancer.secondaries == 0
        batch = ZipfGenerator(alpha=2.0, seed=1).generate(1_000)
        balancer.observe(batch.keys)
        parts = balancer.split(batch)
        assert list(parts) == [0] and len(parts[0]) == 1_000

    def test_by_key_split_keeps_keys_whole(self):
        balancer = SkewAwareBalancer(4, secondaries=2)
        batch = ZipfGenerator(alpha=1.5, seed=6).generate(4_000)
        balancer.observe(batch.keys)
        parts = split_conserves_tuples(balancer, batch)  # tuple mode
        parts = balancer.split(batch, by_key=True)
        owners = {}
        for worker, part in parts.items():
            for key in np.unique(part.keys):
                assert owners.setdefault(int(key), worker) == worker

    def test_plan_attaches_helpers_to_hot_shard(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        hot = np.full(9_000, 0x51, dtype=np.uint64)
        cold = np.arange(1_000, dtype=np.uint64)
        keys = np.concatenate([hot, cold])
        balancer.observe(keys)
        hot_primary = int(shard_of_keys(hot[:1], balancer.primaries)[0])
        team = balancer.team_of(hot_primary)
        assert team[0] == hot_primary
        assert balancer.primaries in team  # secondary worker id = M

    def test_split_round_robins_hot_shard_across_team(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        hot = TupleBatch.from_keys(np.full(1_000, 0x51, dtype=np.uint64))
        balancer.observe(hot.keys)
        parts = split_conserves_tuples(balancer, hot)
        assert len(parts) == 2  # primary + its helper
        sizes = sorted(len(part) for part in parts.values())
        assert sizes == [500, 500]

    def test_rebalance_counted_when_hot_shard_moves(self):
        balancer = SkewAwareBalancer(6, secondaries=2)
        streams = [
            ZipfGenerator(alpha=3.0, seed=seed).generate(4_000).keys
            for seed in (1, 2, 3)
        ]
        for keys in streams:
            balancer.observe(keys)
        # Fresh hot keys land in fresh shards; at least one plan change.
        assert balancer.rebalances >= 1

    def test_identical_samples_yield_stable_plan(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        keys = ZipfGenerator(alpha=1.5, seed=9).generate(8_000).keys
        balancer.observe(keys)
        first = balancer.plan.pairs
        balancer.observe(keys)
        assert balancer.plan.pairs == first
        assert balancer.rebalances == 0


class TestProfileSampling:
    def test_sample_is_bounded_by_profile_sample(self):
        balancer = SkewAwareBalancer(4, profile_sample=256)
        keys = np.arange(10_000, dtype=np.uint64)
        assert len(balancer.sample_keys(keys)) == 256
        # Small segments are profiled whole.
        assert len(balancer.sample_keys(keys[:100])) == 100

    def test_sampling_is_seeded_and_reproducible(self):
        keys = ZipfGenerator(alpha=1.5, seed=3).generate(50_000).keys
        plans = []
        for _ in range(2):
            balancer = SkewAwareBalancer(4, profile_sample=512)
            balancer.observe(keys)
            plans.append(balancer.plan.pairs)
        assert plans[0] == plans[1]

    def test_subsample_sees_past_the_segment_head(self):
        """Truncation would profile only the (cold) head; the seeded
        subsample must catch a hot key that lives in the tail."""
        cold = np.arange(8_192, dtype=np.uint64)
        hot = np.full(32_768, 0x51, dtype=np.uint64)
        keys = np.concatenate([cold, hot])  # hot mass entirely in tail
        balancer = SkewAwareBalancer(4, secondaries=1,
                                     profile_sample=4_096)
        balancer.observe(keys)
        hot_primary = int(shard_of_keys(hot[:1], balancer.primaries)[0])
        assert balancer.plan.pairs[0][1] == hot_primary


class TestExternalControl:
    def test_observe_without_auto_replan_only_histograms(self):
        balancer = SkewAwareBalancer(4, auto_replan=False)
        keys = ZipfGenerator(alpha=2.0, seed=1).generate(2_000).keys
        balancer.observe(keys)
        assert balancer.plan is None
        assert balancer.last_histogram is not None
        assert balancer.last_histogram.sum() == 2_000

    def test_apply_plan_rebuilds_teams_and_counts_changes(self):
        balancer = SkewAwareBalancer(4, secondaries=1, auto_replan=False)
        balancer.apply_plan(SchedulingPlan(pairs=[(3, 0)]))
        assert balancer.team_of(0) == [0, 3]
        assert balancer.rebalances == 0  # first plan is not a change
        balancer.apply_plan(SchedulingPlan(pairs=[(3, 2)]))
        assert balancer.team_of(0) == [0]
        assert balancer.team_of(2) == [2, 3]
        assert balancer.rebalances == 1

    def test_apply_plan_validates_worker_ids(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        with pytest.raises(ValueError, match="targets primary"):
            balancer.apply_plan(SchedulingPlan(pairs=[(3, 7)]))
        with pytest.raises(ValueError, match="secondary"):
            balancer.apply_plan(SchedulingPlan(pairs=[(9, 0)]))

    def test_reconfigure_reshapes_and_drops_stale_plan(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        balancer.observe(
            ZipfGenerator(alpha=2.0, seed=2).generate(2_000).keys)
        assert balancer.plan is not None
        balancer.reconfigure(8)
        assert (balancer.workers, balancer.primaries,
                balancer.secondaries) == (8, 6, 2)
        assert balancer.plan is None
        assert balancer.last_histogram is None
        assert balancer.reconfigurations == 1
        # Explicit primary/secondary conversion at fixed size.
        balancer.reconfigure(8, secondaries=4)
        assert (balancer.primaries, balancer.secondaries) == (4, 4)

    def test_reconfigure_validates_split(self):
        balancer = SkewAwareBalancer(4)
        with pytest.raises(ValueError, match="at least one primary"):
            balancer.reconfigure(4, secondaries=4)


class TestByKeyStability:
    """Non-splittable kernels need each key pinned to ONE worker for the
    job's whole lifetime — across rebalances and reconfigurations."""

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seeds=st.lists(st.integers(min_value=0, max_value=500),
                       min_size=3, max_size=6),
        secondaries=st.sampled_from([1, 2]),
        grow_by=st.sampled_from([0, 2, 4]),
    )
    def test_by_key_owner_never_moves(self, seeds, secondaries, grow_by):
        balancer = SkewAwareBalancer(6, secondaries=secondaries)
        owners = {}
        for index, seed in enumerate(seeds):
            batch = ZipfGenerator(alpha=2.0, seed=seed).generate(1_500)
            balancer.observe(batch.keys)  # replans between windows
            if grow_by and index == len(seeds) // 2:
                balancer.reconfigure(balancer.workers + grow_by)
            parts = balancer.split(batch, by_key=True)
            # Conservation: every tuple routed exactly once.
            assert sum(len(part) for part in parts.values()) == len(batch)
            for worker, part in parts.items():
                for key in np.unique(part.keys):
                    assert owners.setdefault(int(key), worker) == worker, \
                        f"key {key:#x} moved workers"

    def test_shrink_reassigns_only_orphaned_keys(self):
        balancer = SkewAwareBalancer(8, secondaries=2)
        batch = ZipfGenerator(alpha=1.2, seed=4).generate(4_000)
        balancer.observe(batch.keys)
        before = {
            int(key): worker
            for worker, part in balancer.split(batch, by_key=True).items()
            for key in np.unique(part.keys)
        }
        balancer.reconfigure(4)
        after = {
            int(key): worker
            for worker, part in balancer.split(batch, by_key=True).items()
            for key in np.unique(part.keys)
        }
        assert set(after.values()) <= set(range(4))
        for key, worker in before.items():
            if worker < 4:  # owner survived the shrink
                assert after[key] == worker

    def test_reset_key_ownership_forgets_assignments(self):
        balancer = SkewAwareBalancer(4, secondaries=1)
        batch = TupleBatch.from_keys(
            np.full(100, 0x51, dtype=np.uint64))
        balancer.observe(batch.keys)
        balancer.split(batch, by_key=True)
        assert balancer._key_owner
        balancer.reset_key_ownership()
        assert not balancer._key_owner


class TestProfilerExposure:
    def test_workload_histogram_counts_destinations(self):
        hist = workload_histogram([0, 1, 1, 3], pripes=4)
        assert hist.tolist() == [1, 2, 0, 1]
        with pytest.raises(ValueError, match=r"\[0, pripes\)"):
            workload_histogram([5], pripes=4)

    def test_plan_for_destinations_matches_manual_pipeline(self):
        destinations = [0] * 70 + [1] * 20 + [2] * 10
        plan = plan_for_destinations(destinations, secpes=2, pripes=3)
        # Both helpers go to the dominant destination: 70/3 > 20, 10.
        assert [pripe for _, pripe in plan.pairs] == [0, 0]


class TestFactory:
    def test_factory_names(self):
        assert isinstance(make_balancer("skew", 4), SkewAwareBalancer)
        assert isinstance(make_balancer("roundrobin", 4),
                          RoundRobinBalancer)
        with pytest.raises(ValueError, match="unknown balancer"):
            make_balancer("magic", 4)
