"""Service metrics: bounded sampling, snapshot percentiles, stalls."""

import pytest

from repro.service.metrics import (
    QUEUE_DEPTH_WINDOW,
    ServiceMetrics,
)


class TestQueueDepthRingBuffer:
    def test_samples_are_bounded_on_long_lived_services(self):
        metrics = ServiceMetrics()
        for depth in range(QUEUE_DEPTH_WINDOW * 3):
            metrics.sample_queue_depth(depth)
        assert len(metrics.queue_depth_samples) == QUEUE_DEPTH_WINDOW
        # The newest samples survive, the oldest fell off the back.
        assert metrics.queue_depth_samples[-1] == QUEUE_DEPTH_WINDOW * 3 - 1
        assert metrics.queue_depth_samples[0] == QUEUE_DEPTH_WINDOW * 2

    def test_snapshot_exposes_depth_percentiles(self):
        metrics = ServiceMetrics()
        for depth in [0, 0, 0, 0, 0, 0, 0, 0, 0, 10, 10, 100]:
            metrics.sample_queue_depth(depth)
        snap = metrics.snapshot()["queue_depth"]
        assert snap["p50"] == 0
        assert snap["p95"] > 10
        assert snap["peak"] == 100
        assert snap["samples"] == 12

    def test_empty_metrics_snapshot_is_all_zero(self):
        snap = ServiceMetrics().snapshot()
        assert snap["queue_depth"] == {"p50": 0.0, "p95": 0.0,
                                       "peak": 0, "last": 0,
                                       "samples": 0}
        assert snap["fleet_throughput"] == 0.0
        assert snap["control"]["plan_cache_hit_rate"] == 0.0


class TestStallAccounting:
    def test_stalls_extend_makespan_but_not_worker_cycles(self):
        metrics = ServiceMetrics()
        metrics.record_segment(0, tuples=100, cycles=1_000)
        metrics.record_segment(1, tuples=100, cycles=400)
        metrics.record_control(stall_cycles=500)
        assert metrics.busiest_worker_cycles() == 1_000
        assert metrics.makespan_cycles() == 1_500
        assert metrics.fleet_throughput() == pytest.approx(200 / 1_500)

    def test_busiest_worker_cycles_can_exclude_removed_workers(self):
        """After a scale-down the removed worker's counter is retained
        for reporting but must not dominate autoscaling measurements."""
        metrics = ServiceMetrics()
        metrics.record_segment(0, tuples=10, cycles=100)
        metrics.record_segment(3, tuples=10, cycles=9_000)  # removed
        assert metrics.busiest_worker_cycles() == 9_000
        assert metrics.busiest_worker_cycles(within=2) == 100
        assert metrics.busiest_worker_cycles(within=0) == 0

    def test_render_includes_control_line_when_active(self):
        metrics = ServiceMetrics()
        metrics.record_segment(0, tuples=10, cycles=10)
        assert "control plane" not in metrics.render()
        metrics.record_control(drift=2, replans=1, suppressed=1,
                               cache_hits=1, stall_cycles=123)
        text = metrics.render()
        assert "control plane" in text
        assert "2 drift events" in text

    def test_snapshot_control_section_tracks_counters(self):
        metrics = ServiceMetrics()
        metrics.record_control(drift=3, replans=2, suppressed=1,
                               cache_hits=1, cache_misses=1,
                               scale_ups=1, scale_downs=2,
                               stall_cycles=42, plan_age=7)
        control = metrics.snapshot()["control"]
        assert control["drift_events"] == 3
        assert control["replans_applied"] == 2
        assert control["replans_suppressed"] == 1
        assert control["plan_cache_hit_rate"] == 0.5
        assert control["scale_up_events"] == 1
        assert control["scale_down_events"] == 2
        assert control["reschedule_stall_cycles"] == 42
        assert control["plan_age_p50"] == 7
        assert metrics.plan_cache_hit_rate() == 0.5


class TestPlanCacheHitRateLocking:
    """Regression: plan_cache_hit_rate read hits and misses in two
    unlocked loads, so a concurrent record_control could surface a
    rate describing no instant that ever existed (torn read)."""

    class _RecordingLock:
        def __init__(self, inner):
            self.inner = inner
            self.entered = 0

        def __enter__(self):
            self.entered += 1
            return self.inner.__enter__()

        def __exit__(self, *exc):
            return self.inner.__exit__(*exc)

    def test_rate_is_computed_under_the_metrics_lock(self):
        metrics = ServiceMetrics()
        metrics.record_control(cache_hits=3, cache_misses=1)
        probe = self._RecordingLock(metrics._lock)
        metrics._lock = probe
        assert metrics.plan_cache_hit_rate() == pytest.approx(0.75)
        assert probe.entered == 1

    def test_snapshot_reuses_the_held_lock_without_deadlock(self):
        # _snapshot_locked computes the rate while already holding the
        # non-reentrant lock; a naive `with self._lock` in the public
        # accessor would deadlock here.
        metrics = ServiceMetrics()
        metrics.record_control(cache_hits=1, cache_misses=3)
        snapshot = metrics.snapshot()
        assert snapshot["control"]["plan_cache_hit_rate"] == \
            pytest.approx(0.25)

    def test_no_torn_reads_under_concurrent_lookups(self):
        # The writer bumps hits and misses together, so a correctly
        # locked reader can only ever observe a 0.5 rate; a torn read
        # sees one counter's update without the other.
        import threading

        metrics = ServiceMetrics()
        metrics.record_control(cache_hits=1, cache_misses=1)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record_control(cache_hits=1, cache_misses=1)

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(2_000):
                assert metrics.plan_cache_hit_rate() == 0.5
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
