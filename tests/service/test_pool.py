"""Worker pool elasticity: resize up/down, session survival, collection."""

import threading

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.runtime.session import SegmentOutcome, StreamingSession
from repro.service.jobs import kernel_for
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkItem, WorkerPool
from repro.workloads.tuples import TupleBatch


def make_pool(workers=2):
    config = ArchitectureConfig(lanes=8, pripes=16, secpes=0,
                                reschedule_threshold=0.0)

    def factory(job_id):
        return StreamingSession(config=config,
                                kernel=kernel_for("histo", 16),
                                engine="fast")

    return WorkerPool(workers, factory, ServiceMetrics()), factory


def batch_of(keys):
    return TupleBatch.from_keys(np.asarray(keys, dtype=np.uint64))


class TestResize:
    def test_grow_starts_new_workers_immediately(self):
        pool, _ = make_pool(2)
        pool.start()
        try:
            pool.resize(4)
            assert pool.size == 4
            pool.dispatch(3, WorkItem("job", batch_of([1, 2, 3])))
            pool.drain()
            merged = pool.collect("job")
            assert merged.total_tuples == 3
        finally:
            pool.stop()

    def test_grow_before_start_defers_thread_launch(self):
        pool, _ = make_pool(2)
        pool.resize(5)
        assert pool.size == 5
        pool.start()
        try:
            pool.dispatch(4, WorkItem("job", batch_of([7])))
            pool.drain()
            assert pool.collect("job").total_tuples == 1
        finally:
            pool.stop()

    def test_shrink_keeps_removed_workers_sessions_for_collect(self):
        pool, _ = make_pool(4)
        pool.start()
        try:
            for worker in range(4):
                pool.dispatch(worker,
                              WorkItem("job", batch_of([worker] * 10)))
            pool.drain()
            pool.resize(2)
            assert pool.size == 2
            # Workers 2 and 3 are gone, but their partials must merge.
            merged = pool.collect("job")
            assert merged.total_tuples == 40
            golden = kernel_for("histo", 16).golden(
                np.repeat(np.arange(4, dtype=np.uint64), 10),
                np.zeros(40, dtype=np.int64))
            assert np.array_equal(merged.result, golden)
        finally:
            pool.stop()

    def test_shrink_drains_queued_items_before_stopping(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            for _ in range(20):
                pool.dispatch(2, WorkItem("job", batch_of([5] * 50)))
            pool.resize(1)
            merged = pool.collect("job")
            assert merged.total_tuples == 1_000
        finally:
            pool.stop()

    def test_resize_to_same_size_is_a_no_op(self):
        pool, _ = make_pool(2)
        workers_before = list(pool._workers)
        pool.resize(2)
        assert pool._workers == workers_before

    def test_resize_validates(self):
        pool, _ = make_pool(2)
        with pytest.raises(ValueError):
            pool.resize(0)

    def test_dispatch_to_removed_worker_rejected(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            pool.resize(2)
            with pytest.raises(ValueError, match="no such worker"):
                pool.dispatch(2, WorkItem("job", batch_of([1])))
        finally:
            pool.stop()

    def test_restart_after_shrink_builds_current_size(self):
        pool, _ = make_pool(4)
        pool.start()
        pool.resize(2)
        pool.stop()
        pool.start()
        try:
            assert len(pool._workers) == 2
            pool.dispatch(1, WorkItem("job", batch_of([9, 9])))
            pool.drain()
            assert pool.collect("job").total_tuples == 2
        finally:
            pool.stop()


class _BlockingSession:
    """Session stub that parks its worker until released."""

    def __init__(self, release):
        self.release = release
        self.history = []

    def process(self, batch):
        self.release.wait()
        return SegmentOutcome(index=0, tuples=len(batch), cycles=1,
                              tuples_per_cycle=float(len(batch)),
                              plans=0, reschedules=0)


class TestHungShutdown:
    """Regression: a timed-out stop() must leave a restartable pool.

    The old code raised before clearing ``_started``, so after a hang
    ``start()`` was a silent no-op and ``dispatch()`` kept feeding the
    half-dead fleet.
    """

    def make_sticky_pool(self, release, workers=2):
        config = ArchitectureConfig(lanes=8, pripes=16, secpes=0,
                                    reschedule_threshold=0.0)

        def factory(job_id):
            if job_id == "stuck":
                return _BlockingSession(release)
            return StreamingSession(config=config,
                                    kernel=kernel_for("histo", 16),
                                    engine="fast")

        return WorkerPool(workers, factory, ServiceMetrics(),
                          join_timeout=0.2)

    def test_hung_stop_raises_but_leaves_pool_restartable(self):
        release = threading.Event()
        pool = self.make_sticky_pool(release)
        pool.start()
        pool.dispatch(0, WorkItem("stuck", batch_of([1])))
        with pytest.raises(RuntimeError, match="did not stop"):
            pool.stop()
        try:
            # The failed shutdown marked the pool stopped...
            with pytest.raises(RuntimeError, match="not running"):
                pool.dispatch(0, WorkItem("job", batch_of([1])))
            # ...so a restart mints fresh workers and serves normally.
            pool.start()
            pool.dispatch(0, WorkItem("job", batch_of([4, 4])))
            pool.drain()
            assert pool.collect("job").total_tuples == 2
        finally:
            release.set()
            pool.stop()

    def test_restarted_workers_use_a_fresh_generation(self):
        release = threading.Event()
        pool = self.make_sticky_pool(release)
        pool.start()
        first_gen = pool._workers[0].generation
        pool.dispatch(0, WorkItem("stuck", batch_of([1])))
        with pytest.raises(RuntimeError, match="did not stop"):
            pool.stop()
        try:
            pool.start()
            # The abandoned hung thread keeps its old generation key, so
            # its late writes can never collide with the replacements'.
            assert all(w.generation > first_gen for w in pool._workers)
        finally:
            release.set()
            pool.stop()


class TestWorkerIdReuse:
    """Regression: shrink-then-grow must not resurrect old sessions.

    A removed worker's retained partial was keyed ``(worker_id,
    job_id)``, so a new worker minted with the same id silently adopted
    it — double-counting the partial if the job later collected, or
    cross-wiring two jobs' shards.  Generation tagging pins this.
    """

    def test_regrown_worker_id_gets_a_fresh_session(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            pool.dispatch(2, WorkItem("job", batch_of([7] * 5)))
            pool.drain()
            pool.resize(2)  # worker 2 removed; its partial is retained
            pool.resize(3)  # a new worker 2, under a new generation
            pool.dispatch(2, WorkItem("job", batch_of([9] * 4)))
            pool.drain()
            owned = sorted(key for key in pool._sessions
                           if key[2] == "job")
            # Two distinct sessions for worker id 2 — the retained
            # partial and the new worker's — not one shared one.
            assert [key[0] for key in owned] == [2, 2]
            assert owned[0][1] < owned[1][1]
            merged = pool.collect("job")
            assert merged.total_tuples == 9
            golden = kernel_for("histo", 16).golden(
                np.asarray([7] * 5 + [9] * 4, dtype=np.uint64),
                np.zeros(9, dtype=np.int64))
            assert np.array_equal(merged.result, golden)
        finally:
            pool.stop()

    def test_grow_never_adopts_other_jobs_partials(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            pool.dispatch(2, WorkItem("job-a", batch_of([3, 3])))
            pool.drain()
            pool.resize(2)
            pool.resize(3)
            pool.dispatch(2, WorkItem("job-b", batch_of([8])))
            pool.drain()
            assert pool.collect("job-a").total_tuples == 2
            assert pool.collect("job-b").total_tuples == 1
        finally:
            pool.stop()
