"""Worker pool elasticity: resize up/down, session survival, collection."""

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.runtime.session import StreamingSession
from repro.service.jobs import kernel_for
from repro.service.metrics import ServiceMetrics
from repro.service.pool import WorkItem, WorkerPool
from repro.workloads.tuples import TupleBatch


def make_pool(workers=2):
    config = ArchitectureConfig(lanes=8, pripes=16, secpes=0,
                                reschedule_threshold=0.0)

    def factory(job_id):
        return StreamingSession(config=config,
                                kernel=kernel_for("histo", 16),
                                engine="fast")

    return WorkerPool(workers, factory, ServiceMetrics()), factory


def batch_of(keys):
    return TupleBatch.from_keys(np.asarray(keys, dtype=np.uint64))


class TestResize:
    def test_grow_starts_new_workers_immediately(self):
        pool, _ = make_pool(2)
        pool.start()
        try:
            pool.resize(4)
            assert pool.size == 4
            pool.dispatch(3, WorkItem("job", batch_of([1, 2, 3])))
            pool.drain()
            merged = pool.collect("job")
            assert merged.total_tuples == 3
        finally:
            pool.stop()

    def test_grow_before_start_defers_thread_launch(self):
        pool, _ = make_pool(2)
        pool.resize(5)
        assert pool.size == 5
        pool.start()
        try:
            pool.dispatch(4, WorkItem("job", batch_of([7])))
            pool.drain()
            assert pool.collect("job").total_tuples == 1
        finally:
            pool.stop()

    def test_shrink_keeps_removed_workers_sessions_for_collect(self):
        pool, _ = make_pool(4)
        pool.start()
        try:
            for worker in range(4):
                pool.dispatch(worker,
                              WorkItem("job", batch_of([worker] * 10)))
            pool.drain()
            pool.resize(2)
            assert pool.size == 2
            # Workers 2 and 3 are gone, but their partials must merge.
            merged = pool.collect("job")
            assert merged.total_tuples == 40
            golden = kernel_for("histo", 16).golden(
                np.repeat(np.arange(4, dtype=np.uint64), 10),
                np.zeros(40, dtype=np.int64))
            assert np.array_equal(merged.result, golden)
        finally:
            pool.stop()

    def test_shrink_drains_queued_items_before_stopping(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            for _ in range(20):
                pool.dispatch(2, WorkItem("job", batch_of([5] * 50)))
            pool.resize(1)
            merged = pool.collect("job")
            assert merged.total_tuples == 1_000
        finally:
            pool.stop()

    def test_resize_to_same_size_is_a_no_op(self):
        pool, _ = make_pool(2)
        workers_before = list(pool._workers)
        pool.resize(2)
        assert pool._workers == workers_before

    def test_resize_validates(self):
        pool, _ = make_pool(2)
        with pytest.raises(ValueError):
            pool.resize(0)

    def test_dispatch_to_removed_worker_rejected(self):
        pool, _ = make_pool(3)
        pool.start()
        try:
            pool.resize(2)
            with pytest.raises(ValueError, match="no such worker"):
                pool.dispatch(2, WorkItem("job", batch_of([1])))
        finally:
            pool.stop()

    def test_restart_after_shrink_builds_current_size(self):
        pool, _ = make_pool(4)
        pool.start()
        pool.resize(2)
        pool.stop()
        pool.start()
        try:
            assert len(pool._workers) == 2
            pool.dispatch(1, WorkItem("job", batch_of([9, 9])))
            pool.drain()
            assert pool.collect("job").total_tuples == 2
        finally:
            pool.stop()
