"""Job model and admission queue: ordering, cancellation, validation."""

import threading
import time

import numpy as np
import pytest

from repro.service.jobs import Job, JobStatus, kernel_for
from repro.service.queue import JobQueue
from repro.workloads.streams import TimestampedBatch
from repro.workloads.tuples import TupleBatch


def make_job(**kwargs):
    kwargs.setdefault("app", "histo")
    kwargs.setdefault("source", [])
    return Job(**kwargs)


class TestJobModel:
    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown application"):
            make_job(app="sorting")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            make_job(window_seconds=0.0)

    def test_assigns_ids(self):
        a, b = make_job(), make_job()
        assert a.job_id != b.job_id
        assert make_job(job_id="mine").job_id == "mine"

    def test_kernel_for_builds_every_served_app(self):
        for app in ("histo", "dp", "hll", "hhd"):
            kernel = kernel_for(app, pripes=16)
            assert kernel.pripes == 16
        pagerank = kernel_for("pagerank", 16, {"num_vertices": 64})
        assert pagerank.num_vertices == 64

    def test_pagerank_requires_vertices(self):
        with pytest.raises(ValueError, match="num_vertices"):
            kernel_for("pagerank", 16)


class TestQueueOrdering:
    def test_priority_beats_fifo(self):
        queue = JobQueue()
        low = make_job(priority=0)
        high = make_job(priority=5)
        queue.submit(low)
        queue.submit(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_deadline_breaks_priority_ties(self):
        queue = JobQueue()
        late = make_job(priority=1, deadline=2.0)
        soon = make_job(priority=1, deadline=0.5)
        none = make_job(priority=1)  # no deadline sorts last
        queue.submit(none)
        queue.submit(late)
        queue.submit(soon)
        assert [queue.pop() for _ in range(3)] == [soon, late, none]

    def test_fifo_as_final_tiebreak(self):
        queue = JobQueue()
        first = make_job(priority=2)
        second = make_job(priority=2)
        queue.submit(first)
        queue.submit(second)
        assert queue.pop() is first

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None


class TestQueueLifecycle:
    def test_cancel_skips_job(self):
        queue = JobQueue()
        job = make_job()
        queue.submit(job)
        assert queue.cancel(job.job_id)
        assert job.status is JobStatus.CANCELLED
        assert queue.pop() is None
        assert queue.depth() == 0

    def test_cancel_unknown_is_false(self):
        assert not JobQueue().cancel("nope")

    def test_duplicate_ids_rejected(self):
        queue = JobQueue()
        queue.submit(make_job(job_id="dup"))
        with pytest.raises(ValueError, match="duplicate"):
            queue.submit(make_job(job_id="dup"))

    def test_depth_counts_pending_only(self):
        queue = JobQueue()
        jobs = [make_job() for _ in range(3)]
        for job in jobs:
            queue.submit(job)
        queue.cancel(jobs[1].job_id)
        assert queue.depth() == len(queue) == 2


class TestPopDeadline:
    """A finite-timeout pop waits against one absolute deadline."""

    def test_submit_cancel_churn_cannot_extend_a_finite_timeout(self):
        """Each submit+cancel wakes the popper, which used to re-wait
        the *full* timeout — steady churn then blocked a finite pop
        indefinitely.  With the deadline fix it returns by ~timeout."""
        queue = JobQueue()
        outcome = {}

        def popper():
            start = time.monotonic()
            outcome["job"] = queue.pop(timeout=0.3)
            outcome["elapsed"] = time.monotonic() - start

        thread = threading.Thread(target=popper)
        thread.start()
        churn_until = time.monotonic() + 1.2
        while thread.is_alive() and time.monotonic() < churn_until:
            job = make_job()
            queue.submit(job)
            queue.cancel(job.job_id)
            time.sleep(0.02)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert outcome["job"] is None
        # Generous bound: the buggy restart behaviour lands at ~1.5s.
        assert outcome["elapsed"] < 1.0

    def test_finite_timeout_returns_job_arriving_in_time(self):
        queue = JobQueue()
        job = make_job()
        popped = {}

        def popper():
            popped["job"] = queue.pop(timeout=2.0)

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.submit(job)
        thread.join(timeout=2.0)
        assert popped["job"] is job

    def test_blocking_pop_waits_for_submit(self):
        queue = JobQueue()
        job = make_job()
        popped = {}

        def popper():
            popped["job"] = queue.pop(timeout=None)

        thread = threading.Thread(target=popper)
        thread.start()
        time.sleep(0.05)
        queue.submit(job)
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert popped["job"] is job


class TestTimestampedBatch:
    def test_shape_mismatch_rejected(self):
        batch = TupleBatch.from_keys(np.arange(4, dtype=np.uint64))
        with pytest.raises(ValueError, match="one timestamp per tuple"):
            TimestampedBatch(np.zeros(3), batch)

    def test_span(self):
        batch = TupleBatch.from_keys(np.arange(3, dtype=np.uint64))
        stamped = TimestampedBatch(np.array([0.5, 0.1, 0.9]), batch)
        assert stamped.span == (0.1, 0.9)
        assert len(stamped) == 3
