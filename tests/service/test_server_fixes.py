"""Regressions for the serving-layer correctness fixes.

Covers the dispatcher rotation-pointer fix (no job skipped or
double-stepped when a sibling finishes mid-rotation), balancer-counter
sync on the failure path, bounded job retention with purge()/TTL, and
the duplicate-job-id guard on the now thread-safe submit path.
"""

import numpy as np
import pytest

from repro.service import StreamService, shard_of_keys
from repro.service.jobs import Job
from repro.service.server import _ActiveJob
from repro.service.windows import WindowManager
from repro.workloads.streams import chunk_stream, timestamp_batch
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator

WINDOW = 2.56e-6


def zipf_source(tuples=2_000, seed=0, alpha=1.5, chunk=1_000):
    return chunk_stream(
        ZipfGenerator(alpha=alpha, seed=seed).generate(tuples), chunk)


def run_one(service, **submit_kwargs):
    job_id = service.submit("histo", zipf_source(**submit_kwargs),
                            window_seconds=WINDOW)
    service.run()
    return job_id


class TestRotationFairness:
    """White-box: drive _step_round with a scripted _step_job."""

    def drive(self, service, names, finish_at):
        """Step jobs A,B,C... one round at a time; ``finish_at`` maps a
        global step index to True (that job leaves the fleet).  Returns
        the order jobs were stepped in."""
        order = []

        def scripted_step(entry):
            order.append(entry.job.job_id)
            return finish_at.get(len(order) - 1, False)

        service._step_job = scripted_step
        active = [
            _ActiveJob(job=Job(app="histo", source=[], job_id=name),
                       windows=WindowManager(WINDOW),
                       source=iter(()), by_key=False)
            for name in names
        ]
        while active:
            for entry in service._step_round(active):
                active.remove(entry)
            if len(order) > 50:  # safety against livelock regressions
                break
        return order

    def test_finish_with_wrapped_pointer_does_not_skip_successor(self):
        """Seed bug: with a persisted rotation pointer beyond the list
        length, removing the finished job shifted indices under it and
        the *next* job in the rotation was skipped."""
        service = StreamService(workers=1)
        # Weight 1 => one step per round; pointer reaches 3 (== len)
        # after the first full rotation, then A finishes on step 3.
        order = self.drive(service, ["A", "B", "C"],
                           finish_at={3: True, 4: True, 5: True})
        # Steps 0-2 rotate A,B,C; step 3 serves A (wrapped pointer) and
        # finishes it; the very next step MUST serve B, not C.
        assert order == ["A", "B", "C", "A", "B", "C"]
        service.shutdown()

    def test_mid_round_finish_steps_every_survivor_once(self):
        """Weight 3 grants three steps per round: when the first job
        finishes on its step, the remaining two must each get exactly
        one step in the same round (no skip, no double-step)."""
        from repro.service.jobs import TenantSpec

        service = StreamService(workers=1)
        service.register_tenant(TenantSpec("default", weight=3.0,
                                           max_in_flight=3))
        order = self.drive(
            service, ["A", "B", "C"],
            finish_at={0: True, 3: True, 4: True})
        # Round 1: A finishes, then B and C each step once.
        assert order[:3] == ["A", "B", "C"]
        # Round 2: B and C again (B finishes on its step, C after).
        assert order[3:] == ["B", "C"]
        service.shutdown()


class TestRebalanceSyncOnFailure:
    def test_failed_job_still_syncs_rebalances(self):
        """A job that triggers replans and then dies must leave
        ``metrics.rebalances`` equal to the balancer's counter."""
        service = StreamService(workers=4)
        primaries = service.balancer.primaries

        def shard(key):
            return shard_of_keys(np.array([key], dtype=np.uint64),
                                 primaries)[0]

        other = next(k for k in range(1, 10_000) if shard(k) != shard(0))

        def moving_hot_then_crash():
            clock = 0.0
            for key in (0, other, other):
                keys = np.full(4_000, key, dtype=np.uint64)
                yield timestamp_batch(TupleBatch.from_keys(keys),
                                      start=clock)
                clock += WINDOW
            raise RuntimeError("source died")

        job_id = service.submit("histo", moving_hot_then_crash(),
                                window_seconds=WINDOW)
        service.run()
        assert service.poll(job_id)["status"] == "failed"
        assert service.balancer.rebalances >= 1  # the plan did move
        assert service.metrics.rebalances == service.balancer.rebalances
        service.shutdown()


class TestJobRetention:
    def test_unbounded_by_default(self):
        service = StreamService(workers=1)
        jobs = [run_one(service, seed=seed) for seed in range(3)]
        for job_id in jobs:
            assert service.poll(job_id)["status"] == "completed"
        service.shutdown()

    def test_bounded_retention_evicts_oldest_terminal(self):
        service = StreamService(workers=1, retained_jobs=2)
        jobs = [run_one(service, seed=seed) for seed in range(4)]
        for stale in jobs[:2]:
            with pytest.raises(KeyError):
                service.poll(stale)
        for kept in jobs[2:]:
            assert service.poll(kept)["status"] == "completed"
        service.shutdown()

    def test_queued_jobs_are_never_evicted(self):
        service = StreamService(workers=1, retained_jobs=1)
        done = run_one(service, seed=0)
        queued = [service.submit("histo", zipf_source(seed=s),
                                 window_seconds=WINDOW)
                  for s in range(3)]
        for job_id in queued:  # pending, untouched by the bound
            assert service.poll(job_id)["status"] == "pending"
        assert service.poll(done)["status"] == "completed"
        service.run()
        # Now terminal: only the newest survives the bound of 1.
        assert service.poll(queued[-1])["status"] == "completed"
        with pytest.raises(KeyError):
            service.poll(queued[0])
        service.shutdown()

    def test_purge_keep_and_return_count(self):
        service = StreamService(workers=1)
        jobs = [run_one(service, seed=seed) for seed in range(3)]
        assert service.purge(keep=1) == 2
        assert service.poll(jobs[-1])["status"] == "completed"
        for stale in jobs[:2]:
            with pytest.raises(KeyError):
                service.poll(stale)
        assert service.purge() == 1
        service.shutdown()

    def test_purge_ttl_uses_dispatch_clock(self):
        service = StreamService(workers=1)
        old = run_one(service, seed=0)
        young = run_one(service, seed=1)
        # `old` finished one job's worth of dispatched tuples ago;
        # `young` finished at the current clock reading.
        assert service.purge(older_than=1) == 1
        with pytest.raises(KeyError):
            service.poll(old)
        assert service.poll(young)["status"] == "completed"
        service.shutdown()

    def test_purge_keep_beyond_held_count_drops_nothing(self):
        service = StreamService(workers=1)
        jobs = [run_one(service, seed=seed) for seed in range(3)]
        assert service.purge(keep=5) == 0
        for job_id in jobs:
            assert service.poll(job_id)["status"] == "completed"
        service.shutdown()

    def test_purge_validates_arguments(self):
        service = StreamService(workers=1)
        with pytest.raises(ValueError):
            service.purge(older_than=-1)
        with pytest.raises(ValueError):
            service.purge(keep=-1)
        service.shutdown()

    def test_retained_jobs_validated(self):
        with pytest.raises(ValueError):
            StreamService(workers=1, retained_jobs=0)


class TestDuplicateJobIds:
    def test_live_duplicate_rejected_terminal_reusable(self):
        service = StreamService(workers=1)
        service.submit("histo", zipf_source(seed=0),
                       window_seconds=WINDOW, job_id="mine")
        with pytest.raises(ValueError, match="duplicate"):
            service.submit("histo", zipf_source(seed=1),
                           window_seconds=WINDOW, job_id="mine")
        service.run()
        assert service.poll("mine")["status"] == "completed"
        # Terminal ids may be reused (the resubmit contract).
        service.submit("histo", zipf_source(seed=2),
                       window_seconds=WINDOW, job_id="mine")
        service.run()
        assert service.poll("mine")["status"] == "completed"
        service.shutdown()
