"""End-to-end service tests: submit/poll/result across the worker fleet."""

import numpy as np
import pytest

from repro.apps.hyperloglog import hll_estimate_from_registers
from repro.service import StreamService
from repro.service.jobs import kernel_for
from repro.workloads.streams import chunk_stream, timestamp_batch
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator

WINDOW = 2e-6


def zipf_batch(alpha=1.5, tuples=6_000, seed=5):
    return ZipfGenerator(alpha=alpha, seed=seed).generate(tuples)


@pytest.fixture
def service():
    svc = StreamService(workers=4, balancer="skew")
    yield svc
    svc.shutdown()


class TestSingleJob:
    def test_histogram_job_matches_golden(self, service):
        batch = zipf_batch()
        job_id = service.submit("histo", chunk_stream(batch, 2_000),
                                window_seconds=WINDOW)
        assert service.run() == 1
        result = service.result(job_id)
        golden = kernel_for("histo", 16).golden(batch.keys, batch.values)
        assert np.array_equal(result.result, golden)
        assert result.tuples == len(batch)
        assert result.segments > 0
        assert result.late_tuples == 0

    def test_hll_job_matches_golden(self, service):
        batch = zipf_batch(alpha=0.0, seed=8)
        job_id = service.submit("hll", chunk_stream(batch, 3_000),
                                window_seconds=WINDOW)
        service.run()
        registers = service.result(job_id).result
        golden = kernel_for("hll", 16).golden(batch.keys, batch.values)
        assert np.array_equal(registers, golden)
        estimate = hll_estimate_from_registers(registers)
        true_cardinality = len(np.unique(batch.keys))
        assert estimate == pytest.approx(true_cardinality, rel=0.1)

    def test_partition_job_matches_golden(self, service):
        batch = zipf_batch(alpha=1.0, tuples=4_000, seed=2)
        job_id = service.submit("dp", chunk_stream(batch, 2_000),
                                window_seconds=WINDOW)
        service.run()
        result = service.result(job_id).result
        golden = kernel_for("dp", 16).golden(batch.keys, batch.values)
        assert set(result) == set(golden)
        for part in golden:
            assert sorted(result[part]) == sorted(golden[part])

    def test_pagerank_job_accumulates_rank_mass(self, service):
        vertices = 256
        rng = np.random.default_rng(4)
        batch = TupleBatch(
            keys=rng.integers(0, vertices, 4_000).astype(np.uint64),
            values=rng.integers(0, vertices, 4_000, dtype=np.int64),
        )
        params = {"num_vertices": vertices}
        job_id = service.submit("pagerank", chunk_stream(batch, 2_000),
                                window_seconds=WINDOW, params=params)
        service.run()
        result = service.result(job_id).result
        golden = kernel_for("pagerank", 16, params).golden(
            batch.keys, batch.values)
        assert np.array_equal(result, golden)


class TestHeavyHitterIntegrity:
    def test_true_hitter_survives_team_splitting(self):
        """A key just above threshold must not be diluted below it by
        the balancer spreading its tuples across a worker team."""
        rng = np.random.default_rng(3)
        keys = np.concatenate([
            np.full(300, 7, dtype=np.uint64),  # true hitter (>256)
            rng.integers(1 << 16, 1 << 32, 4_000, dtype=np.uint64),
        ])
        rng.shuffle(keys)
        batch = TupleBatch.from_keys(keys)
        # workers=2 -> 1 primary + 1 secondary: every key's shard has a
        # two-worker team, the worst case for estimate dilution.
        svc = StreamService(workers=2, balancer="skew")
        job_id = svc.submit("hhd", chunk_stream(batch, 5_000),
                            window_seconds=1e-2,
                            params={"threshold": 256})
        svc.run()
        hitters = svc.result(job_id).result
        svc.shutdown()
        assert 7 in hitters
        assert hitters[7] >= 300


class TestByKeyOwnershipLifecycle:
    def test_key_ownership_resets_between_jobs(self):
        """Sticky by-key pins are a per-job contract: a later job must
        place its keys under the current plan, and the ownership map
        must not accumulate every tenant's key universe."""
        svc = StreamService(workers=2, balancer="skew")
        first_keys = np.arange(1_000, dtype=np.uint64)
        svc.submit("hhd", chunk_stream(TupleBatch.from_keys(first_keys),
                                       500),
                   window_seconds=WINDOW, params={"threshold": 10})
        svc.run()
        second_keys = np.arange(50_000, 50_400, dtype=np.uint64)
        svc.submit("hhd", chunk_stream(TupleBatch.from_keys(second_keys),
                                       200),
                   window_seconds=WINDOW, params={"threshold": 10})
        svc.run()
        svc.shutdown()
        owned = set(svc.balancer._key_owner)
        assert owned <= set(second_keys.tolist())
        assert not owned & set(first_keys.tolist())


class TestServiceRestart:
    def test_service_usable_again_after_shutdown(self):
        svc = StreamService(workers=2, balancer="skew")
        first = svc.submit("histo", chunk_stream(zipf_batch(), 3_000),
                           window_seconds=WINDOW)
        svc.run()
        svc.shutdown()
        second = svc.submit("histo", chunk_stream(zipf_batch(), 3_000),
                            window_seconds=WINDOW)
        svc.run()
        svc.shutdown()
        assert svc.poll(first)["status"] == "completed"
        assert svc.poll(second)["status"] == "completed"

    def test_single_worker_fleet(self):
        svc = StreamService(workers=1, balancer="skew")
        batch = zipf_batch(tuples=3_000)
        job_id = svc.submit("histo", chunk_stream(batch, 1_500),
                            window_seconds=WINDOW)
        svc.run()
        golden = kernel_for("histo", 16).golden(batch.keys, batch.values)
        assert np.array_equal(svc.result(job_id).result, golden)
        svc.shutdown()


class TestMultiTenancy:
    def test_priority_orders_service(self, service):
        low = service.submit("histo", chunk_stream(zipf_batch(), 3_000),
                             window_seconds=WINDOW, priority=0)
        high = service.submit("hll", chunk_stream(zipf_batch(seed=6),
                                                  3_000),
                              window_seconds=WINDOW, priority=9)
        # Serve exactly one job: it must be the high-priority one.
        assert service.run(max_jobs=1) == 1
        assert service.poll(high)["status"] == "completed"
        assert service.poll(low)["status"] == "pending"
        service.run()
        assert service.poll(low)["status"] == "completed"

    def test_cancelled_job_never_runs(self, service):
        job_id = service.submit("histo",
                                chunk_stream(zipf_batch(), 2_000),
                                window_seconds=WINDOW)
        assert service.cancel(job_id)
        assert service.run() == 0
        assert service.poll(job_id)["status"] == "cancelled"
        with pytest.raises(RuntimeError, match="cancelled"):
            service.result(job_id)

    def test_every_worker_participates(self, service):
        service.submit("histo", chunk_stream(zipf_batch(alpha=0.0),
                                             2_000),
                       window_seconds=WINDOW)
        service.run()
        assert set(service.metrics.workers) == {0, 1, 2, 3}
        assert service.metrics.fleet_throughput() > 0


class TestFailurePaths:
    def test_bad_app_rejected_at_submit(self, service):
        with pytest.raises(ValueError, match="unknown application"):
            service.submit("sorting", [])

    def test_bad_params_rejected_at_submit(self, service):
        with pytest.raises(ValueError, match="num_vertices"):
            service.submit("pagerank", [])

    def test_broken_source_fails_job(self, service):
        def exploding():
            yield timestamp_batch(zipf_batch(tuples=1_000))
            raise IOError("feed disconnected")

        job_id = service.submit("histo", exploding(),
                                window_seconds=WINDOW)
        service.run()
        status = service.poll(job_id)
        assert status["status"] == "failed"
        assert "feed disconnected" in status["error"]
        with pytest.raises(RuntimeError, match="failed"):
            service.result(job_id)

    def test_unknown_job_id(self, service):
        with pytest.raises(KeyError):
            service.poll("job-does-not-exist")


class TestResubmittedJobId:
    def test_resubmitted_id_does_not_inherit_old_errors(self):
        """A failed run's worker errors must not leak into a later job
        reusing the same client-chosen id."""
        vertices = 16
        params = {"num_vertices": vertices}
        svc = StreamService(workers=1, balancer="skew")
        # Keys beyond the vertex range blow up inside the worker (not
        # at admission, where only the params are validated).
        bad = TupleBatch(
            keys=np.full(200, 1_000, dtype=np.uint64),
            values=np.zeros(200, dtype=np.int64),
        )
        svc.submit("pagerank", chunk_stream(bad, 100),
                   window_seconds=WINDOW, params=params, job_id="retry")
        svc.run()
        assert svc.poll("retry")["status"] == "failed"

        rng = np.random.default_rng(9)
        good = TupleBatch(
            keys=rng.integers(0, vertices, 500).astype(np.uint64),
            values=rng.integers(0, vertices, 500, dtype=np.int64),
        )
        svc.submit("pagerank", chunk_stream(good, 250),
                   window_seconds=WINDOW, params=params, job_id="retry")
        svc.run()
        svc.shutdown()
        assert svc.poll("retry")["status"] == "completed"
        golden = kernel_for("pagerank", 16, params).golden(good.keys,
                                                           good.values)
        assert np.array_equal(svc.result("retry").result, golden)


class TestEngineSwitch:
    def test_cycle_engine_still_served(self):
        batch = zipf_batch(tuples=3_000)
        svc = StreamService(workers=2, balancer="skew", engine="cycle")
        job_id = svc.submit("histo", chunk_stream(batch, 1_500),
                            window_seconds=WINDOW)
        svc.run()
        golden = kernel_for("histo", 16).golden(batch.keys, batch.values)
        assert np.array_equal(svc.result(job_id).result, golden)
        svc.shutdown()

    def test_engines_agree_on_results(self):
        batch = zipf_batch(alpha=1.8, tuples=4_000, seed=21)
        results = {}
        for engine in ("fast", "cycle"):
            svc = StreamService(workers=4, balancer="skew", engine=engine)
            job_id = svc.submit("histo", chunk_stream(batch, 2_000),
                                window_seconds=WINDOW)
            svc.run()
            results[engine] = svc.result(job_id).result
            svc.shutdown()
        assert np.array_equal(results["fast"], results["cycle"])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            StreamService(workers=2, engine="warp")


class TestRoundRobinService:
    def test_round_robin_also_correct_just_slower(self):
        """Both balancers produce identical results; only cycles differ."""
        batch = zipf_batch(alpha=2.0, seed=13)
        results = {}
        for balancer in ("roundrobin", "skew"):
            svc = StreamService(workers=4, balancer=balancer)
            job_id = svc.submit("histo", chunk_stream(batch, 2_000),
                                window_seconds=WINDOW)
            svc.run()
            results[balancer] = (svc.result(job_id).result,
                                 svc.metrics.makespan_cycles())
            svc.shutdown()
        assert np.array_equal(results["roundrobin"][0],
                              results["skew"][0])
        assert results["skew"][1] < results["roundrobin"][1]
