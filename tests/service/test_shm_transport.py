"""The shared-memory shard transport, end to end.

Four promises under test:

1. **Equivalence** — ``transport="shm"`` produces bit-identical
   :class:`JobResult`s and identical deterministic metrics to
   ``transport="pipe"`` across the full app matrix, while actually
   moving zero copied bytes (counter-verified).
2. **Graceful exhaustion** — a shard the arena cannot place falls back
   to the pipe copy, counted, never failed.
3. **Hygiene** — no ``/dev/shm`` segment survives ``stop()``, a worker
   crash, or a service restart.
4. **Lost-shard retry** — a worker crash mid-job replays the crashed
   worker's retained shards to its replacement instead of failing the
   job: same result bits, same metrics, ``backend.shard.retry`` events
   in the trace.  (The retry ledger is transport-independent, so both
   transports are exercised.)

Plus the dtype satellite: the shard header carries the arrays' dtypes
in both transports, so non-default key/value dtypes round-trip instead
of being misdecoded as the historical hardcoded uint64/int64.
"""

import dataclasses
import os
import pickle

import numpy as np
import pytest

from repro.core.config import ArchitectureConfig
from repro.obs import TraceCollector
from repro.obs import events as trace_events
from repro.service import (
    SERVED_APPS,
    ProcessBackend,
    ServiceMetrics,
    SessionSpec,
    SlabArena,
    SlabClient,
    StreamService,
)
from repro.service.pool import WorkItem
from repro.service.shm import block_size
from repro.workloads.streams import chunk_stream
from repro.workloads.tuples import TupleBatch
from repro.workloads.zipf import ZipfGenerator

TRANSPORTS = ("pipe", "shm")


def shm_segments():
    """Names currently present in /dev/shm (empty set off-POSIX)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover — non-Linux hosts
        return set()


def app_workload(app, tuples=6_000, seed=5):
    if app == "pagerank":
        rng = np.random.default_rng(seed)
        batch = TupleBatch(
            keys=rng.integers(0, 256, tuples).astype(np.uint64),
            values=rng.integers(0, 256, tuples, dtype=np.int64),
        )
        return batch, {"num_vertices": 256}
    return ZipfGenerator(alpha=1.5, seed=seed).generate(tuples), {}


def result_bits(job_result):
    return pickle.dumps(dataclasses.astuple(job_result))


def comparable(snapshot):
    """Snapshot minus the (deliberately transport-variant) counters."""
    stripped = dict(snapshot)
    stripped.pop("transport", None)
    return stripped


def serve_one(transport, app, *, stream=None, tracer=None, workers=4):
    """One job on the process backend; (result, snapshot, events)."""
    batch, params = app_workload(app)
    if tracer is None:
        tracer = TraceCollector(enabled=False)
    service = StreamService(workers=workers, balancer="skew",
                            backend="process", transport=transport,
                            tracer=tracer)
    try:
        source = stream(service, batch) if stream is not None \
            else chunk_stream(batch, 2_000)
        job_id = service.submit(app, source, window_seconds=2e-6,
                                params=params, job_id=f"shm-{app}")
        service.run()
        result = service.result(job_id)
        snapshot = service.metrics.snapshot()
    finally:
        service.shutdown()
    return result, snapshot, tracer.events()


# ----------------------------------------------------------------------
# The arena itself
# ----------------------------------------------------------------------
class TestSlabArena:
    def test_write_then_view_roundtrips_and_reclaims(self):
        arena = SlabArena(slab_bytes=1 << 16, max_slabs=2)
        client = SlabClient(arena.ctrl_name)
        try:
            keys = np.arange(100, dtype=np.uint64)
            values = -np.arange(100, dtype=np.int64)
            desc = arena.write(0, keys, values)
            assert desc is not None
            seen_keys, seen_values = client.views(desc)
            np.testing.assert_array_equal(seen_keys, keys)
            np.testing.assert_array_equal(seen_values, values)
            # Views are read-only: mutation is a loud error, not silent
            # cross-process corruption.
            with pytest.raises(ValueError):
                seen_keys[0] = 1
            del seen_keys, seen_values
            assert arena.outstanding() == 1
            client.done(0, desc.seq)
            assert arena.outstanding() == 0
        finally:
            client.detach()
            arena.close()

    def test_blocks_recycle_once_consumed(self):
        # One slab holding exactly two blocks: the third write needs a
        # consumed block back.
        nbytes = block_size(8, np.uint64, np.int64)
        arena = SlabArena(slab_bytes=2 * nbytes, max_slabs=1)
        client = SlabClient(arena.ctrl_name)
        metrics_before = None
        try:
            keys = np.arange(8, dtype=np.uint64)
            values = np.arange(8, dtype=np.int64)
            first = arena.write(0, keys, values)
            second = arena.write(0, keys, values)
            assert first is not None and second is not None
            assert arena.write(0, keys, values) is None  # full
            client.done(0, first.seq)
            third = arena.write(0, keys, values)
            assert third is not None
            assert third.offset == first.offset  # the recycled block
        finally:
            client.detach()
            arena.close()

    def test_free_list_coalesces_adjacent_blocks(self):
        # Three small blocks fill the slab; after all are consumed, one
        # write of the full slab size must fit — which requires the
        # free list to have merged the three neighbours back together.
        small = block_size(8, np.uint64, np.int64)
        arena = SlabArena(slab_bytes=3 * small, max_slabs=1)
        client = SlabClient(arena.ctrl_name)
        try:
            keys = np.arange(8, dtype=np.uint64)
            values = np.arange(8, dtype=np.int64)
            descs = [arena.write(0, keys, values) for _ in range(3)]
            assert all(d is not None for d in descs)
            client.done(0, descs[-1].seq)  # consumed through the last
            big = np.arange(20, dtype=np.uint64)
            assert block_size(20, np.uint64, np.int64) == 3 * small
            desc = arena.write(0, big, big.astype(np.int64))
            assert desc is not None and desc.offset == 0
        finally:
            client.detach()
            arena.close()

    def test_oversize_and_exhausted_writes_return_none(self):
        arena = SlabArena(slab_bytes=4096, max_slabs=1)
        try:
            huge = np.zeros(4096, dtype=np.uint64)  # > slab on its own
            assert arena.write(0, huge, huge.astype(np.int64)) is None
        finally:
            arena.close()

    def test_close_unlinks_every_segment(self):
        before = shm_segments()
        arena = SlabArena(slab_bytes=1 << 16, max_slabs=4)
        keys = np.arange(64, dtype=np.uint64)
        arena.write(0, keys, keys.astype(np.int64))
        assert shm_segments() != before  # ctrl + one slab exist
        arena.close()
        assert shm_segments() == before

    def test_release_worker_frees_unconsumed_blocks(self):
        nbytes = block_size(8, np.uint64, np.int64)
        arena = SlabArena(slab_bytes=2 * nbytes, max_slabs=1)
        try:
            keys = np.arange(8, dtype=np.uint64)
            values = np.arange(8, dtype=np.int64)
            assert arena.write(0, keys, values) is not None
            assert arena.write(0, keys, values) is not None
            assert arena.write(0, keys, values) is None  # full
            arena.release_worker(0)  # crashed child: nobody reads these
            assert arena.write(0, keys, values) is not None
        finally:
            arena.close()


# ----------------------------------------------------------------------
# Transport equivalence across the app matrix
# ----------------------------------------------------------------------
class TestTransportEquivalence:
    @pytest.mark.parametrize("app", SERVED_APPS)
    def test_results_and_metrics_identical_pipe_vs_shm(self, app):
        pipe_result, pipe_snap, _ = serve_one("pipe", app)
        shm_result, shm_snap, _ = serve_one("shm", app)
        assert result_bits(pipe_result) == result_bits(shm_result)
        assert comparable(pipe_snap) == comparable(shm_snap)
        # The win is counter-verified, not asserted: shm moved strictly
        # fewer copied bytes (zero, when nothing fell back) and the
        # pipe path shared nothing.
        pipe_t, shm_t = pipe_snap["transport"], shm_snap["transport"]
        assert pipe_t["shards_pipe"] > 0 and pipe_t["shards_shm"] == 0
        assert shm_t["shards_shm"] > 0
        assert shm_t["shard_bytes_copied"] < pipe_t["shard_bytes_copied"]
        assert shm_t["shard_bytes_shared"] > 0
        assert pipe_t["shard_bytes_shared"] == 0
        if shm_t["slab_fallbacks"] == 0:
            assert shm_t["shard_bytes_copied"] == 0


# ----------------------------------------------------------------------
# Exhaustion fallback
# ----------------------------------------------------------------------
def make_backend_pair(transport, **kwargs):
    config = ArchitectureConfig(lanes=8, pripes=16, secpes=0,
                                reschedule_threshold=0.0)
    spec = SessionSpec(app="histo", config=config)
    metrics = ServiceMetrics()
    backend = ProcessBackend(2, lambda job_id: spec, metrics,
                             transport=transport, **kwargs)
    return backend, metrics


class TestExhaustionFallback:
    def test_unplaceable_shards_fall_back_to_pipe(self):
        # A 4 KiB single-slab arena: the big shard cannot be placed and
        # must travel as pipe bytes; the small one rides the slab.  The
        # merged result sees both either way.
        backend, metrics = make_backend_pair("shm", slab_bytes=4096,
                                             max_slabs=1)
        backend.start()
        try:
            big = TupleBatch(np.arange(2_000, dtype=np.uint64),
                             np.ones(2_000, dtype=np.int64))
            small = TupleBatch(np.arange(10, dtype=np.uint64),
                               np.ones(10, dtype=np.int64))
            backend.dispatch(0, WorkItem("job", big))
            backend.dispatch(1, WorkItem("job", small))
            backend.drain()
            merged = backend.collect("job")
            assert merged is not None
            assert int(merged.result.sum()) == 2_010
            transport = metrics.snapshot()["transport"]
            assert transport["slab_fallbacks"] == 1
            assert transport["shards_pipe"] == 1
            assert transport["shards_shm"] == 1
            assert transport["shard_bytes_copied"] > 0
        finally:
            backend.stop()

    def test_sustained_service_inside_tiny_arena(self):
        # Far more in-flight bytes than the arena holds: consumed-block
        # recycling plus pipe fallback keep the job correct.
        tracer = TraceCollector(enabled=True)
        service = StreamService(workers=4, balancer="skew",
                                backend="process", transport="shm",
                                tracer=tracer)
        service._pool.slab_bytes = 1 << 14  # fleet starts lazily in run()
        service._pool.max_slabs = 1
        try:
            batch = ZipfGenerator(alpha=1.5, seed=5).generate(12_000)
            job_id = service.submit("histo", chunk_stream(batch, 2_000),
                                    window_seconds=2e-6)
            service.run()
            assert service.poll(job_id)["status"] == "completed"
            assert int(service.result(job_id).result.sum()) == 12_000
        finally:
            service.shutdown()


# ----------------------------------------------------------------------
# /dev/shm hygiene
# ----------------------------------------------------------------------
class TestArenaCleanup:
    def test_stop_leaves_no_segments(self):
        before = shm_segments()
        serve_one("shm", "histo")
        assert shm_segments() == before

    def test_crash_leaves_no_segments(self):
        before = shm_segments()

        def crashing(service, batch):
            for index, events in enumerate(chunk_stream(batch, 2_000)):
                if index == 2:
                    child = service._pool._children[0]
                    child.process.kill()
                    child.process.join()
                yield events

        result, _, _ = serve_one("shm", "histo", stream=crashing)
        assert result.result is not None
        assert shm_segments() == before

    def test_service_restart_recreates_the_arena(self):
        batch, _ = app_workload("histo", tuples=3_000)
        service = StreamService(workers=2, balancer="skew",
                                backend="process", transport="shm")
        try:
            service.submit("histo", chunk_stream(batch, 1_500),
                           window_seconds=2e-6, job_id="first")
            service.run()
            first = service.result("first")
            service.shutdown()  # arena unlinked with the fleet
            service.submit("histo", chunk_stream(batch, 1_500),
                           window_seconds=2e-6, job_id="second")
            service.run()  # fresh fleet, fresh arena
            second = service.result("second")
            assert np.array_equal(first.result, second.result)
        finally:
            service.shutdown()
        assert service.metrics.transport.shards_shm > 0


# ----------------------------------------------------------------------
# Lost-shard retry
# ----------------------------------------------------------------------
def kill_worker(service, victim=0):
    child = service._pool._children[victim]
    child.process.kill()
    child.process.join()


def killing_stream(victim=0, at_chunk=1, chunk=2_000):
    """A source that SIGKILLs one worker subprocess mid-job.

    The crash surfaces as a broken pipe on the next dispatch to the
    victim, triggering revive-and-replay while the stream continues.
    """

    def stream(service, batch):
        for index, events in enumerate(chunk_stream(batch, chunk)):
            if index == at_chunk:
                kill_worker(service, victim)
            yield events

    return stream


def kill_after_stream(victim=0, chunk=2_000):
    """SIGKILL a worker after the final chunk, before the drain."""

    def stream(service, batch):
        yield from chunk_stream(batch, chunk)
        kill_worker(service, victim)

    return stream


class TestLostShardRetry:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("app", ("histo", "hhd"))
    def test_crash_replays_instead_of_failing(self, transport, app):
        # hhd is by_key: replay must land on the same worker id or the
        # per-key ownership (and the merged result) would shift.
        clean_result, clean_snap, _ = serve_one(transport, app)
        tracer = TraceCollector(enabled=True)
        crash_result, crash_snap, events = serve_one(
            transport, app, stream=killing_stream(), tracer=tracer)
        assert result_bits(clean_result) == result_bits(crash_result)
        # Exactly-once accounting: the replayed shards fold no
        # duplicate segment records, so the deterministic snapshot
        # matches a run that never crashed.
        assert comparable(clean_snap) == comparable(crash_snap)
        crashes = [e for e in events
                   if e.kind == trace_events.BACKEND_CRASH]
        retries = [e for e in events
                   if e.kind == trace_events.BACKEND_SHARD_RETRY]
        assert len(crashes) == 1
        assert retries, "crash recovery must emit shard retry events"
        assert crash_snap["transport"]["shard_retries"] == len(retries)
        assert all(e.worker == crashes[0].worker for e in retries)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_crash_at_drain_is_recovered(self, transport):
        # Kill after the last chunk: the loss is only discovered at the
        # drain barrier, whose revive+replay+reflush path must recover.
        clean_result, clean_snap, _ = serve_one(transport, "histo")
        crash_result, crash_snap, _ = serve_one(
            transport, "histo", stream=kill_after_stream())
        assert result_bits(clean_result) == result_bits(crash_result)
        assert comparable(clean_snap) == comparable(crash_snap)


# ----------------------------------------------------------------------
# Dtype-carrying shard headers
# ----------------------------------------------------------------------
class TestDtypeHeaders:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_non_default_dtypes_roundtrip(self, transport):
        # The historical pipe protocol hardcoded uint64/int64 decodes:
        # a uint32 key array would be misparsed as half as many uint64s.
        # The header now carries both dtypes; the child decodes with
        # them and TupleBatch's own coercion restores the canonical
        # types, so results match the uint64 baseline exactly.
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 16, 1_000).astype(np.uint64)
        values = rng.integers(0, 1 << 10, 1_000, dtype=np.int64)

        def run(shrink_dtypes):
            backend, _ = make_backend_pair(transport)
            backend.start()
            try:
                batch = TupleBatch(keys.copy(), values.copy())
                if shrink_dtypes:
                    batch.keys = batch.keys.astype(np.uint32)
                    batch.values = batch.values.astype(np.int32)
                backend.dispatch(0, WorkItem("job", batch))
                backend.drain()
                merged = backend.collect("job")
                assert merged is not None
                return merged.result
            finally:
                backend.stop()

        np.testing.assert_array_equal(run(False), run(True))
