"""Multi-tenant scheduling: WFQ queue, admission control, tenant metrics.

The weighted-fair queue, the concurrent dispatcher, the per-tenant
metrics and the admission quotas are exercised here; the strict
single-tenant behaviour they must not disturb is pinned by the
pre-existing suites (``test_queue.py``, ``test_service.py``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.service import StreamService
from repro.service.jobs import (
    DEFAULT_TENANT,
    Job,
    JobStatus,
    QuotaExceededError,
    TenantSpec,
    kernel_for,
)
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue
from repro.workloads.streams import chunk_stream
from repro.workloads.zipf import ZipfGenerator

WINDOW = 2e-6


def make_job(**kwargs):
    kwargs.setdefault("app", "histo")
    kwargs.setdefault("source", [])
    return Job(**kwargs)


def zipf_source(tuples=6_000, seed=5, chunk=2_000, alpha=1.5):
    return chunk_stream(
        ZipfGenerator(alpha=alpha, seed=seed).generate(tuples), chunk)


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("acme")
        assert spec.weight == 1.0
        assert spec.max_in_flight == 1
        assert spec.slo_delay_tuples is None

    @pytest.mark.parametrize("kwargs", [
        {"weight": 0.0},
        {"weight": -1.0},
        {"slo_delay_tuples": -1},
        {"max_in_flight": 0},
        {"max_queued": 0},
        {"worker_quota": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec("acme", **kwargs)

    def test_empty_tenant_id_rejected(self):
        with pytest.raises(ValueError, match="tenant_id"):
            TenantSpec("")
        with pytest.raises(ValueError, match="tenant_id"):
            make_job(tenant_id="")


class TestWeightedFairQueue:
    def fill(self, queue, tenant, count, **kwargs):
        jobs = [make_job(tenant_id=tenant, **kwargs) for _ in range(count)]
        for job in jobs:
            queue.submit(job)
        return jobs

    def test_backlogged_tenants_share_by_weight(self):
        queue = JobQueue()
        queue.register_tenant(TenantSpec("gold", weight=3.0))
        queue.register_tenant(TenantSpec("bronze", weight=1.0))
        self.fill(queue, "gold", 30)
        self.fill(queue, "bronze", 30)
        popped = [queue.pop().tenant_id for _ in range(20)]
        assert popped.count("gold") == 15
        assert popped.count("bronze") == 5

    def test_priority_cannot_cross_tenants(self):
        """A tenant flooding priority-9 jobs cannot push another
        tenant's priority-0 job back beyond its fair share."""
        queue = JobQueue()
        self.fill(queue, "noisy", 20, priority=9)
        victim = make_job(tenant_id="quiet", priority=0)
        queue.submit(victim)
        popped = [queue.pop() for _ in range(3)]
        assert victim in popped

    def test_priority_still_orders_within_a_tenant(self):
        queue = JobQueue()
        low = make_job(tenant_id="acme", priority=0)
        high = make_job(tenant_id="acme", priority=5)
        queue.submit(low)
        queue.submit(high)
        assert queue.pop() is high
        assert queue.pop() is low

    def test_idle_tenant_does_not_bank_credit(self):
        """A tenant that was idle while another drained 50 pops comes
        back to its *fair share*, not to 50 pops of saved-up credit."""
        queue = JobQueue()
        self.fill(queue, "busy", 60)
        for _ in range(50):
            assert queue.pop().tenant_id == "busy"
        self.fill(queue, "latecomer", 10)
        popped = [queue.pop().tenant_id for _ in range(10)]
        assert popped.count("latecomer") == 5
        assert popped.count("busy") == 5

    def test_blocked_tenants_are_skipped_not_drained(self):
        queue = JobQueue()
        gold = self.fill(queue, "gold", 2)
        bronze = self.fill(queue, "bronze", 2)
        assert queue.pop(blocked={"gold"}) is bronze[0]
        assert queue.pop(blocked={"bronze"}) is gold[0]
        assert queue.tenant_depth("gold") == 1
        assert queue.tenant_depth("bronze") == 1

    def test_all_tenants_blocked_returns_none(self):
        queue = JobQueue()
        self.fill(queue, "gold", 1)
        assert queue.pop(blocked={"gold"}) is None
        assert queue.depth() == 1

    def test_depth_counter_tracks_submit_cancel_pop(self):
        queue = JobQueue()
        jobs = [make_job(tenant_id=f"t{i % 3}") for i in range(9)]
        for job in jobs:
            queue.submit(job)
        assert queue.depth() == 9
        queue.cancel(jobs[0].job_id)
        queue.cancel(jobs[4].job_id)
        assert queue.depth() == 7
        seen = []
        while True:
            job = queue.pop()
            if job is None:
                break
            seen.append(job)
        assert len(seen) == 7
        assert queue.depth() == 0
        assert jobs[0] not in seen and jobs[4] not in seen

    def test_register_tenant_updates_live_weight(self):
        queue = JobQueue()
        self.fill(queue, "a", 20)
        self.fill(queue, "b", 20)
        queue.register_tenant(TenantSpec("a", weight=4.0))
        popped = [queue.pop().tenant_id for _ in range(10)]
        assert popped.count("a") == 8


class TestAgePromotion:
    def test_flooded_low_priority_job_is_eventually_served(self):
        """A continuously replenished priority-9 class must not hold a
        priority-0 job of the same tenant back past the promotion
        horizon."""
        queue = JobQueue(promote_after=16)
        victim = make_job(priority=0)
        queue.submit(victim)
        for _ in range(4):
            queue.submit(make_job(priority=9))
        served_within = None
        for pops in range(1, 64):
            # The flooding submitter keeps the high class replenished.
            queue.submit(make_job(priority=9))
            job = queue.pop()
            if job is victim:
                served_within = pops
                break
        assert served_within is not None, "victim starved"
        assert served_within <= 16 + 1

    def test_promotion_disabled_starves_under_strict_order(self):
        queue = JobQueue(fair=False, promote_after=None)
        victim = make_job(priority=0)
        queue.submit(victim)
        for _ in range(4):
            queue.submit(make_job(priority=9))
        for _ in range(40):
            queue.submit(make_job(priority=9))
            assert queue.pop() is not victim

    def test_promotion_applies_in_strict_mode_too(self):
        queue = JobQueue(fair=False, promote_after=8)
        victim = make_job(priority=0)
        queue.submit(victim)
        popped = []
        for _ in range(12):
            queue.submit(make_job(priority=9))
            popped.append(queue.pop())
        assert victim in popped

    def test_promote_after_validation(self):
        with pytest.raises(ValueError, match="promote_after"):
            JobQueue(promote_after=0)


class TestWfqSharesProperty:
    @given(
        weights=st.lists(
            st.floats(min_value=0.25, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=4),
    )
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_shares_converge_to_weights(self, weights):
        """For any weight vector, pop counts over a horizon where every
        tenant stays backlogged track weight shares within one pop per
        *competing* tenant (SFQ's pairwise unfairness bound for unit
        jobs, summed over the other flows)."""
        queue = JobQueue()
        horizon = 64
        for index, weight in enumerate(weights):
            queue.register_tenant(TenantSpec(f"t{index}", weight=weight))
            for _ in range(horizon):
                queue.submit(make_job(tenant_id=f"t{index}"))
        counts = {f"t{index}": 0 for index in range(len(weights))}
        for _ in range(horizon):
            counts[queue.pop().tenant_id] += 1
        total_weight = sum(weights)
        bound = len(weights) + 1e-6
        for index, weight in enumerate(weights):
            expected = horizon * weight / total_weight
            assert abs(counts[f"t{index}"] - expected) <= bound, (
                weights, counts)


@pytest.fixture
def two_tenant_service():
    svc = StreamService(workers=4, balancer="skew")
    svc.register_tenant(TenantSpec("gold", weight=3.0,
                                   slo_delay_tuples=20_000))
    svc.register_tenant(TenantSpec("bronze", weight=1.0))
    yield svc
    svc.shutdown()


class TestTenantService:
    def test_results_stay_golden_under_interleaving(self,
                                                    two_tenant_service):
        svc = two_tenant_service
        batches = {
            "gold": ZipfGenerator(alpha=1.5, seed=7).generate(6_000),
            "bronze": ZipfGenerator(alpha=1.5, seed=8).generate(6_000),
        }
        ids = {
            tenant: svc.submit("histo", chunk_stream(batch, 2_000),
                               window_seconds=WINDOW, tenant_id=tenant)
            for tenant, batch in batches.items()
        }
        assert svc.run() == 2
        for tenant, job_id in ids.items():
            result = svc.result(job_id)
            golden = kernel_for("histo", 16).golden(
                batches[tenant].keys, batches[tenant].values)
            assert np.array_equal(result.result, golden)
            assert result.tenant_id == tenant

    def test_unregistered_tenant_gets_default_contract(self):
        svc = StreamService(workers=2, balancer="skew")
        job_id = svc.submit("histo", zipf_source(tuples=2_000),
                            window_seconds=WINDOW, tenant_id="walk-in")
        svc.run()
        svc.shutdown()
        assert svc.poll(job_id)["status"] == "completed"
        assert svc.poll(job_id)["tenant"] == "walk-in"
        assert svc.metrics.snapshot()["tenants"]["walk-in"][
            "jobs"]["completed"] == 1

    def test_default_submit_stays_default_tenant(self):
        svc = StreamService(workers=2, balancer="skew")
        job_id = svc.submit("histo", zipf_source(tuples=2_000),
                            window_seconds=WINDOW)
        svc.run()
        svc.shutdown()
        assert svc.result(job_id).tenant_id == DEFAULT_TENANT

    def test_queue_enforces_quota_atomically_under_its_lock(self):
        """The quota check lives inside JobQueue.submit (one lock with
        the enqueue), so concurrent ingest threads cannot both squeeze
        past the last slot."""
        queue = JobQueue()
        queue.register_tenant(TenantSpec("capped", max_queued=1))
        queue.submit(make_job(tenant_id="capped"))
        with pytest.raises(QuotaExceededError, match="capped"):
            queue.submit(make_job(tenant_id="capped"))
        assert queue.tenant_depth("capped") == 1

    def test_max_queued_quota_rejects_submit(self):
        svc = StreamService(workers=2, balancer="skew")
        svc.register_tenant(TenantSpec("capped", max_queued=2))
        for _ in range(2):
            svc.submit("histo", zipf_source(tuples=1_000),
                       window_seconds=WINDOW, tenant_id="capped")
        with pytest.raises(QuotaExceededError, match="capped"):
            svc.submit("histo", zipf_source(tuples=1_000),
                       window_seconds=WINDOW, tenant_id="capped")
        snap = svc.metrics.snapshot()["tenants"]["capped"]
        assert snap["jobs"]["rejected"] == 1
        assert snap["jobs"]["submitted"] == 2
        svc.run()
        svc.shutdown()

    def test_max_in_flight_admits_concurrently(self):
        """With max_in_flight=2 the tenant's two jobs interleave: both
        are RUNNING before either completes (observable via a source
        that checks the sibling's status mid-stream)."""
        svc = StreamService(workers=2, balancer="skew")
        svc.register_tenant(TenantSpec("wide", max_in_flight=2))
        observed = []

        def probing_source(other_id):
            def generate():
                for events in zipf_source(tuples=4_000):
                    if other_id:
                        observed.append(
                            svc.poll(other_id[0])["status"])
                    yield events
            return generate()

        first_box = []
        first = svc.submit("histo", probing_source([]),
                           window_seconds=WINDOW, tenant_id="wide")
        first_box.append(first)
        svc.submit("histo", probing_source(first_box),
                   window_seconds=WINDOW, tenant_id="wide")
        svc.run()
        svc.shutdown()
        assert "running" in observed

    def test_worker_quota_folds_fanout(self):
        svc = StreamService(workers=4, balancer="skew")
        svc.register_tenant(TenantSpec("narrow", worker_quota=2))
        batch = ZipfGenerator(alpha=0.0, seed=3).generate(4_000)
        job_id = svc.submit("histo", chunk_stream(batch, 2_000),
                            window_seconds=WINDOW, tenant_id="narrow")
        svc.run()
        svc.shutdown()
        golden = kernel_for("histo", 16).golden(batch.keys, batch.values)
        assert np.array_equal(svc.result(job_id).result, golden)
        # Only workers 0 and 1 ever saw this tenant's shards.
        busy = {worker for worker, stats in svc.metrics.workers.items()
                if stats.tuples > 0}
        assert busy <= {0, 1}

    def test_worker_quota_cannot_exceed_fleet(self):
        svc = StreamService(workers=2, balancer="skew")
        with pytest.raises(ValueError, match="worker_quota"):
            svc.register_tenant(TenantSpec("greedy", worker_quota=8))
        svc.shutdown()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            StreamService(workers=2, scheduler="lottery")

    def test_poll_reports_queue_delay(self, two_tenant_service):
        svc = two_tenant_service
        first = svc.submit("histo", zipf_source(tuples=4_000),
                           window_seconds=WINDOW, tenant_id="gold")
        second = svc.submit("histo", zipf_source(tuples=4_000, seed=9),
                            window_seconds=WINDOW, tenant_id="gold")
        svc.run()
        assert svc.poll(first)["queue_delay"] == 0
        # The second gold job (in-flight cap 1) waited for the first.
        assert svc.poll(second)["queue_delay"] >= 4_000


class TestTenantMetrics:
    def test_snapshot_breaks_out_tenants(self, two_tenant_service):
        svc = two_tenant_service
        svc.submit("histo", zipf_source(), window_seconds=WINDOW,
                   tenant_id="gold")
        svc.submit("histo", zipf_source(seed=6), window_seconds=WINDOW,
                   tenant_id="bronze")
        svc.run()
        tenants = svc.metrics.snapshot()["tenants"]
        assert set(tenants) >= {"gold", "bronze"}
        for name in ("gold", "bronze"):
            assert tenants[name]["tuples"] == 6_000
            assert tenants[name]["cycles"] > 0
            assert tenants[name]["jobs"]["completed"] == 1
            assert tenants[name]["queue_delay"]["samples"] == 1
        assert tenants["gold"]["weight"] == 3.0
        assert tenants["gold"]["slo_delay_tuples"] == 20_000

    def test_tenant_tuples_sum_to_fleet_tuples(self, two_tenant_service):
        svc = two_tenant_service
        svc.submit("histo", zipf_source(), window_seconds=WINDOW,
                   tenant_id="gold")
        svc.submit("hll", zipf_source(seed=6), window_seconds=WINDOW,
                   tenant_id="bronze")
        svc.run()
        snap = svc.metrics.snapshot()
        per_tenant = sum(entry["tuples"]
                         for entry in snap["tenants"].values())
        assert per_tenant == snap["total_tuples"]

    def test_slo_attainment_math(self):
        metrics = ServiceMetrics()
        metrics.register_tenant("acme", weight=2.0, slo_delay_tuples=100)
        for delay in (0, 50, 100, 101, 500):
            metrics.record_queue_delay("acme", delay)
        stats = metrics.tenants["acme"]
        assert stats.slo_met == 3
        assert stats.slo_missed == 2
        assert stats.slo_attainment == pytest.approx(0.6)
        assert metrics.tenant_slo_attainment() == {
            "acme": pytest.approx(0.6)}
        snap = metrics.snapshot()["tenants"]["acme"]
        assert snap["slo_attainment"] == pytest.approx(0.6)
        assert snap["queue_delay"]["peak"] == 500

    def test_no_slo_means_no_attainment_entry(self):
        metrics = ServiceMetrics()
        metrics.record_queue_delay("acme", 10)
        assert metrics.tenant_slo_attainment() == {}
        assert metrics.snapshot()["tenants"]["acme"][
            "slo_attainment"] == 1.0

    def test_stall_attribution(self):
        metrics = ServiceMetrics()
        metrics.record_control(stall_cycles=500, tenant="noisy")
        metrics.record_control(stall_cycles=250)
        assert metrics.reschedule_stall_cycles == 750
        assert metrics.tenants["noisy"].stall_cycles == 500
        assert metrics.snapshot()["tenants"]["noisy"][
            "stall_cycles"] == 500

    def test_render_shows_tenant_table(self, two_tenant_service):
        svc = two_tenant_service
        svc.submit("histo", zipf_source(tuples=2_000),
                   window_seconds=WINDOW, tenant_id="gold")
        svc.run()
        text = svc.metrics.render()
        assert "Per-tenant serving record" in text
        assert "gold" in text

    def test_single_default_tenant_render_stays_clean(self):
        svc = StreamService(workers=2, balancer="skew")
        svc.submit("histo", zipf_source(tuples=2_000),
                   window_seconds=WINDOW)
        svc.run()
        svc.shutdown()
        assert "Per-tenant serving record" not in svc.metrics.render()


class TestCancelledTenantAccounting:
    def test_cancel_charges_the_owning_tenant(self):
        svc = StreamService(workers=2, balancer="skew")
        job_id = svc.submit("histo", zipf_source(tuples=1_000),
                            window_seconds=WINDOW, tenant_id="flaky")
        assert svc.cancel(job_id)
        svc.shutdown()
        assert svc.metrics.jobs_cancelled == 1
        assert svc.metrics.tenants["flaky"].jobs_cancelled == 1
        job = svc._job(job_id)
        assert job.status is JobStatus.CANCELLED
