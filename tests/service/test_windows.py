"""Event-time windowing: closing, lateness, flush, batch contents."""

import numpy as np
import pytest

from repro.service.windows import WindowManager
from repro.workloads.streams import (
    NetworkModel,
    TimestampedBatch,
    chunk_stream,
    timestamp_batch,
)
from repro.workloads.tuples import TupleBatch


def stamped(times, keys=None):
    times = np.asarray(times, dtype=np.float64)
    if keys is None:
        keys = np.arange(len(times), dtype=np.uint64)
    return TimestampedBatch(times,
                            TupleBatch.from_keys(np.asarray(keys,
                                                            np.uint64)))


class TestWindowClosing:
    def test_window_closes_when_watermark_passes_end(self):
        manager = WindowManager(window_seconds=1.0)
        assert manager.observe(stamped([0.1, 0.5])) == []
        closed = manager.observe(stamped([1.2]))
        assert [w.index for w in closed] == [0]
        assert closed[0].closed and closed[0].tuples == 2

    def test_multiple_windows_close_oldest_first(self):
        manager = WindowManager(window_seconds=1.0)
        # Watermark jumps to 2.4, so windows 0 and 1 close immediately.
        closed = manager.observe(stamped([0.2, 1.3, 2.4]))
        assert [w.index for w in closed] == [0, 1]
        assert [w.index for w in manager.observe(stamped([5.0]))] == [2]

    def test_one_batch_spanning_windows_splits(self):
        manager = WindowManager(window_seconds=1.0)
        closed = manager.observe(
            stamped([0.1, 0.9, 1.1, 2.05], keys=[10, 11, 12, 13]))
        assert [w.index for w in closed] == [0, 1]
        assert sorted(closed[0].to_batch().keys.tolist()) == [10, 11]
        assert closed[1].to_batch().keys.tolist() == [12]

    def test_allowed_lateness_delays_close(self):
        strict = WindowManager(window_seconds=1.0)
        lax = WindowManager(window_seconds=1.0, allowed_lateness=0.5)
        assert strict.observe(stamped([0.1, 1.2]))
        assert not lax.observe(stamped([0.1, 1.2]))
        assert lax.observe(stamped([1.6]))


class TestBoundaryAssignment:
    """Tuples stamped exactly at a window start belong to that window."""

    def test_exact_boundary_joins_its_own_window(self):
        # 0.3 / 0.1 == 2.999... in floats: floor_divide alone files the
        # tuple under window 2 instead of 3.
        manager = WindowManager(window_seconds=0.1)
        manager.observe(stamped([0.3], keys=[42]))
        closed = manager.flush()
        assert [w.index for w in closed] == [3]
        assert closed[0].to_batch().keys.tolist() == [42]

    @pytest.mark.parametrize("window_seconds", [0.1, 4e-6, 2.56e-6])
    def test_every_window_start_maps_to_its_index(self, window_seconds):
        manager = WindowManager(window_seconds=window_seconds)
        k = np.arange(1, 1_000)
        indices = manager._window_of(k * window_seconds)
        assert np.array_equal(indices, k)

    def test_large_absolute_times_do_not_snap_interior_tuples(self):
        # The snap tolerance tracks float spacing, not timestamp
        # magnitude: at epoch-scale event times a tuple 50us before a
        # 1s boundary must stay in its own window.
        manager = WindowManager(window_seconds=1.0)
        indices = manager._window_of(np.array([86_400.0 - 5e-5,
                                               86_400.0]))
        assert indices.tolist() == [86_399, 86_400]

    def test_boundary_tuple_is_not_late(self):
        # Closing window 2 advances the watermark to its end: a tuple
        # stamped exactly at that boundary opens window 3, it is not a
        # late arrival into window 2.
        manager = WindowManager(window_seconds=0.1)
        manager.observe(stamped([0.05, 0.25]))
        manager.observe(stamped([3 * 0.1]))
        assert manager.late_tuples == 0
        assert 3 in manager.open_windows


class TestLateData:
    def test_late_tuples_dropped_and_counted(self):
        manager = WindowManager(window_seconds=1.0)
        manager.observe(stamped([0.5, 2.5]))  # closes window 0
        manager.observe(stamped([0.7]))       # late: window 0 gone
        assert manager.late_tuples == 1
        # Late data never resurrects the closed window.
        assert all(w.index != 0 for w in manager.flush())

    def test_in_order_stream_has_no_late_tuples(self):
        manager = WindowManager(window_seconds=1e-6)
        source = chunk_stream(
            TupleBatch.from_keys(
                np.arange(4000, dtype=np.uint64)), 1000)
        for events in source:
            manager.observe(events)
        manager.flush()
        assert manager.late_tuples == 0


class TestFlush:
    def test_flush_closes_everything_in_order(self):
        manager = WindowManager(window_seconds=1.0)
        closed = manager.observe(stamped([0.3, 1.4, 3.7]))
        assert [w.index for w in closed] == [0, 1]
        assert [w.index for w in manager.flush()] == [3]
        assert manager.open_windows == ()

    def test_total_tuples_conserved(self):
        manager = WindowManager(window_seconds=0.5)
        times = np.linspace(0.0, 4.0, 101)
        closed = manager.observe(stamped(times))
        closed += manager.flush()
        assert sum(w.tuples for w in closed) == 101
        assert manager.late_tuples == 0
        assert manager.windows_closed == len(closed)


class TestValidationAndAdapters:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowManager(window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowManager(window_seconds=1.0, allowed_lateness=-1.0)

    def test_timestamp_batch_uses_line_rate(self):
        network = NetworkModel(line_rate_gbps=100.0, tuple_bytes=8)
        batch = TupleBatch.from_keys(np.arange(10, dtype=np.uint64))
        stamped_batch = timestamp_batch(batch, network, start=1.0)
        spacing = 1.0 / network.tuples_per_second
        assert stamped_batch.timestamps[0] == 1.0
        assert np.allclose(np.diff(stamped_batch.timestamps), spacing)

    def test_arrival_stream_spans_evolving_segments(self):
        from repro.workloads.evolving import EvolvingZipfStream
        from repro.workloads.streams import arrival_stream

        stream = EvolvingZipfStream(alpha=2.0, interval_tuples=1_000,
                                    total_tuples=3_000, base_seed=5)
        stamped_segments = list(arrival_stream(stream))
        assert [len(s) for s in stamped_segments] == [1_000] * 3
        all_times = np.concatenate(
            [s.timestamps for s in stamped_segments])
        # Event time advances continuously across segment boundaries,
        # so windows can straddle them.
        assert np.all(np.diff(all_times) > 0)
        manager = WindowManager(window_seconds=1e-6)
        closed = []
        for events in stamped_segments:
            closed += manager.observe(events)
        closed += manager.flush()
        assert manager.windows_closed >= 2
        assert sum(w.tuples for w in closed) == 3_000
        assert manager.late_tuples == 0

    def test_chunk_stream_advances_clock_across_chunks(self):
        batch = TupleBatch.from_keys(np.arange(100, dtype=np.uint64))
        chunks = list(chunk_stream(batch, 30))
        assert [len(c) for c in chunks] == [30, 30, 30, 10]
        boundaries = [c.timestamps[0] for c in chunks]
        assert boundaries == sorted(boundaries)
        all_times = np.concatenate([c.timestamps for c in chunks])
        assert np.all(np.diff(all_times) > 0)
