"""Channel semantics: FIFO order, two-phase commit, capacity, closure."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.channel import Channel, ChannelClosed


class TestBasics:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            Channel("bad", capacity=0)

    def test_starts_empty(self):
        ch = Channel("c")
        assert len(ch) == 0
        assert not ch.can_read()
        assert ch.try_read() is None
        assert ch.peek() is None

    def test_read_from_empty_raises_and_counts_stall(self):
        ch = Channel("c")
        with pytest.raises(IndexError):
            ch.read()
        assert ch.read_stalls == 1


class TestTwoPhaseCommit:
    def test_write_not_visible_same_cycle(self):
        ch = Channel("c")
        assert ch.write(1)
        assert not ch.can_read()          # staged, not committed
        assert ch.staged_count == 1
        ch.commit()
        assert ch.can_read()
        assert ch.read() == 1

    def test_fifo_order_across_commits(self):
        ch = Channel("c", capacity=16)
        ch.write(1)
        ch.write(2)
        ch.commit()
        ch.write(3)
        ch.commit()
        assert [ch.read(), ch.read(), ch.read()] == [1, 2, 3]

    def test_peek_does_not_consume(self):
        ch = Channel("c")
        ch.write("x")
        ch.commit()
        assert ch.peek() == "x"
        assert ch.read() == "x"


class TestCapacity:
    def test_write_fails_when_full(self):
        ch = Channel("c", capacity=2)
        assert ch.write(1) and ch.write(2)
        assert not ch.write(3)
        assert ch.write_stalls == 1

    def test_staged_counts_against_capacity(self):
        ch = Channel("c", capacity=2)
        ch.write(1)
        ch.commit()
        ch.write(2)
        # 1 committed + 1 staged == capacity: next write must fail.
        assert not ch.write(3)

    def test_can_write_multi(self):
        ch = Channel("c", capacity=3)
        assert ch.can_write(3)
        assert not ch.can_write(4)
        ch.write(0)
        assert ch.can_write(2)
        assert not ch.can_write(3)

    def test_reading_frees_capacity(self):
        ch = Channel("c", capacity=1)
        ch.write(1)
        ch.commit()
        assert not ch.can_write()
        ch.read()
        assert ch.can_write()


class TestClose:
    def test_close_is_deferred_to_commit(self):
        ch = Channel("c")
        ch.write(1)
        ch.close()
        assert not ch.closed
        ch.commit()
        assert ch.closed
        assert not ch.exhausted            # one element still queued
        ch.read()
        assert ch.exhausted

    def test_write_after_close_raises(self):
        ch = Channel("c")
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.write(1)

    def test_close_preserves_staged_data(self):
        ch = Channel("c")
        ch.write(1)
        ch.write(2)
        ch.close()
        ch.commit()
        assert [ch.read(), ch.read()] == [1, 2]


class TestStatistics:
    def test_counters(self):
        ch = Channel("c", capacity=4)
        for i in range(4):
            ch.write(i)
        ch.commit()
        assert ch.total_written == 4
        assert ch.peak_occupancy == 4
        ch.read()
        ch.read()
        assert ch.total_read == 2

    def test_peak_tracks_maximum(self):
        ch = Channel("c", capacity=8)
        ch.write(1)
        ch.commit()
        ch.read()
        ch.write(1)
        ch.write(2)
        ch.commit()
        assert ch.peak_occupancy == 2


@given(st.lists(st.integers(), min_size=0, max_size=64))
def test_property_fifo_preserves_sequence(items):
    """Whatever is written (across arbitrary commit points) reads back in
    order."""
    ch = Channel("p", capacity=128)
    for i, item in enumerate(items):
        ch.write(item)
        if i % 3 == 0:
            ch.commit()
    ch.commit()
    out = []
    while ch.can_read():
        out.append(ch.read())
    assert out == items


@given(st.integers(min_value=1, max_value=32),
       st.integers(min_value=0, max_value=100))
def test_property_occupancy_never_exceeds_capacity(capacity, attempts):
    ch = Channel("p", capacity=capacity)
    written = 0
    for i in range(attempts):
        if ch.write(i):
            written += 1
        if i % 5 == 4:
            ch.commit()
    ch.commit()
    assert ch.occupancy <= capacity
    assert ch.occupancy == written
