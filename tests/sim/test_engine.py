"""Simulator scheduling: ordering, stop conditions, dynamic enqueue."""

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.module import Module


class Producer(Module):
    def __init__(self, out: Channel, count: int) -> None:
        super().__init__("producer")
        self.out = out
        self.count = count
        self.sent = 0

    def tick(self, cycle: int) -> None:
        if self.sent >= self.count:
            self.out.close()
            self.finish()
            return
        if self.out.write(self.sent):
            self.sent += 1
            self.note_busy()
        else:
            self.note_stall()


class Consumer(Module):
    def __init__(self, inp: Channel) -> None:
        super().__init__("consumer")
        self.inp = inp
        self.received = []

    def tick(self, cycle: int) -> None:
        item = self.inp.try_read()
        if item is not None:
            self.received.append(item)
            self.note_busy()
        elif self.inp.exhausted:
            self.finish()
        else:
            self.note_idle()


def build_pipeline(count=10, capacity=4):
    sim = Simulator()
    ch = sim.add_channel(Channel("p2c", capacity=capacity))
    prod = sim.add_module(Producer(ch, count))
    cons = sim.add_module(Consumer(ch))
    return sim, prod, cons


def test_pipeline_delivers_everything_in_order():
    sim, prod, cons = build_pipeline(count=25, capacity=3)
    report = sim.run(max_cycles=1000)
    assert report.completed
    assert cons.received == list(range(25))

def test_one_cycle_channel_latency():
    """An item written in cycle t is readable no earlier than t+1."""
    sim, prod, cons = build_pipeline(count=1, capacity=4)
    sim.step()                      # producer stages item
    assert cons.received == []
    sim.step()                      # consumer sees it
    assert cons.received == [0]

def test_until_predicate_stops_run():
    sim, prod, cons = build_pipeline(count=1000)
    report = sim.run(max_cycles=10_000,
                     until=lambda s: len(cons.received) >= 5)
    assert report.completed
    assert len(cons.received) >= 5
    assert report.cycles < 10_000

def test_budget_exhaustion_marks_incomplete():
    sim, prod, cons = build_pipeline(count=1000)
    report = sim.run(max_cycles=3)
    assert not report.completed
    assert report.cycles == 3

def test_report_contents():
    sim, prod, cons = build_pipeline(count=8, capacity=2)
    report = sim.run(max_cycles=200)
    assert "producer" in report.module_utilization
    assert report.channel_peaks["p2c"] <= 2
    assert report.throughput(8) > 0

def test_enqueue_module_joins_next_cycle():
    sim = Simulator()
    ch = sim.add_channel(Channel("c"))
    late = Consumer(ch)

    class Enqueuer(Module):
        def __init__(self):
            super().__init__("enq")

        def tick(self, cycle):
            if cycle == 2:
                sim.enqueue_module(late)
                ch.write("hello")
                ch.close()
                self.finish()
            self.note_idle()

    sim.add_module(Enqueuer())
    report = sim.run(max_cycles=50)
    assert report.completed
    assert late.received == ["hello"]
