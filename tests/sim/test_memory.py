"""Memory engines: burst all-or-nothing reads, closure cascade, drains."""

import pytest

from repro.sim.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.memory import GlobalMemory, MemoryReadEngine, MemoryWriteEngine


class TestGlobalMemory:
    def test_allocate_and_access(self):
        mem = GlobalMemory()
        region = mem.allocate("tuples", [1, 2, 3])
        assert mem.region("tuples") is region
        assert "tuples" in mem

    def test_double_allocate_rejected(self):
        mem = GlobalMemory()
        mem.allocate("r")
        with pytest.raises(KeyError):
            mem.allocate("r")


class TestReadEngine:
    def test_requires_lanes(self):
        with pytest.raises(ValueError):
            MemoryReadEngine("r", [1], [])

    def test_streams_round_robin_across_lanes(self):
        lanes = [Channel(f"l{i}", capacity=64) for i in range(4)]
        engine = MemoryReadEngine("r", list(range(8)), lanes)
        sim = Simulator()
        for lane in lanes:
            sim.add_channel(lane)
        sim.add_module(engine)
        sim.run(max_cycles=10)
        assert engine.tuples_issued == 8
        # Tuple i goes to lane i % N in issue order.
        assert list(lanes[0]) == [0, 4]
        assert list(lanes[3]) == [3, 7]

    def test_burst_is_all_or_nothing(self):
        """If one lane is full, no lane receives data that cycle."""
        lanes = [Channel("l0", capacity=1), Channel("l1", capacity=1)]
        engine = MemoryReadEngine("r", list(range(6)), lanes)
        engine.tick(0)
        for lane in lanes:
            lane.commit()
        # Lane 0 and 1 now hold one tuple each and are full.
        engine.tick(1)
        assert engine.stall_cycles == 1
        assert engine.tuples_issued == 2

    def test_partial_tail_burst(self):
        """A tail shorter than the lane count still issues."""
        lanes = [Channel(f"l{i}", capacity=8) for i in range(4)]
        engine = MemoryReadEngine("r", [1, 2, 3, 4, 5], lanes)
        sim = Simulator()
        for lane in lanes:
            sim.add_channel(lane)
        sim.add_module(engine)
        sim.run(max_cycles=10)
        assert engine.tuples_issued == 5

    def test_closes_lanes_when_exhausted(self):
        lanes = [Channel("l0", capacity=8)]
        engine = MemoryReadEngine("r", [1], lanes)
        sim = Simulator()
        sim.add_channel(lanes[0])
        sim.add_module(engine)
        sim.run(max_cycles=10)
        assert lanes[0].closed
        assert engine.done

    def test_window_bounds(self):
        lanes = [Channel("l0", capacity=64)]
        engine = MemoryReadEngine("r", list(range(10)), lanes,
                                  start_index=2, end_index=5)
        sim = Simulator()
        sim.add_channel(lanes[0])
        sim.add_module(engine)
        sim.run(max_cycles=20)
        assert list(lanes[0]) == [2, 3, 4]


class TestWriteEngine:
    def test_drains_inputs_to_sink(self):
        sink = []
        ch = Channel("in", capacity=16)
        engine = MemoryWriteEngine("w", sink, [ch], drain_per_cycle=4)
        for i in range(6):
            ch.write(i)
        ch.close()
        ch.commit()
        engine.tick(0)
        assert sink == [0, 1, 2, 3]
        engine.tick(1)
        assert sink == [0, 1, 2, 3, 4, 5]
        engine.tick(2)
        assert engine.done
