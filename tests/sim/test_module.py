"""Module lifecycle and utilisation accounting."""

import pytest

from repro.sim.module import Module


class Counter(Module):
    """Ticks busy for `busy` cycles then finishes."""

    def __init__(self, busy: int) -> None:
        super().__init__("counter")
        self.remaining = busy

    def tick(self, cycle: int) -> None:
        if self.remaining > 0:
            self.remaining -= 1
            self.note_busy()
        else:
            self.finish()


def test_base_tick_is_abstract():
    with pytest.raises(NotImplementedError):
        Module("m").tick(0)

def test_finish_sets_done():
    m = Counter(0)
    assert not m.done
    m.tick(0)
    assert m.done

def test_utilization_mixes_busy_stall_idle():
    m = Module("m")
    m.note_busy()
    m.note_busy()
    m.note_stall()
    m.note_idle()
    assert m.busy_cycles == 2
    assert m.stall_cycles == 1
    assert m.idle_cycles == 1
    assert m.utilization == pytest.approx(0.5)

def test_utilization_zero_when_never_ticked():
    assert Module("m").utilization == 0.0
