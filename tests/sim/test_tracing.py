"""Tracers: occupancy sampling and windowed throughput."""

import pytest

from repro.sim.channel import Channel
from repro.sim.tracing import ChannelOccupancyTrace, ThroughputTrace


class TestOccupancyTrace:
    def test_samples_on_grid_only(self):
        ch = Channel("c", capacity=8)
        trace = ChannelOccupancyTrace([ch], every=2)
        ch.write(1)
        ch.commit()
        trace.sample(0)
        trace.sample(1)   # off-grid, ignored
        trace.sample(2)
        assert trace.cycles == [0, 2]
        assert trace.samples["c"] == [1, 1]

    def test_max_occupancy(self):
        ch = Channel("c", capacity=8)
        trace = ChannelOccupancyTrace([ch], every=1)
        trace.sample(0)
        ch.write(1)
        ch.write(2)
        ch.commit()
        trace.sample(1)
        assert trace.max_occupancy("c") == 2

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ChannelOccupancyTrace([], every=0)


class TestThroughputTrace:
    def test_windowed_rate(self):
        trace = ThroughputTrace(window=10)
        for cycle in range(1, 21):
            trace.record(2)
            trace.on_cycle(cycle)
        assert trace.total == 40
        assert trace.history
        assert trace.latest() == pytest.approx(2.0)

    def test_no_history_before_first_window(self):
        trace = ThroughputTrace(window=100)
        trace.record(5)
        trace.on_cycle(50)
        assert trace.history == []
        assert trace.latest() == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ThroughputTrace(window=0)
