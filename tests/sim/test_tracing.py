"""Tracers: occupancy sampling and windowed throughput."""

import pytest

from repro.sim.channel import Channel
from repro.sim.tracing import ChannelOccupancyTrace, ThroughputTrace


class TestOccupancyTrace:
    def test_samples_on_grid_only(self):
        ch = Channel("c", capacity=8)
        trace = ChannelOccupancyTrace([ch], every=2)
        ch.write(1)
        ch.commit()
        trace.sample(0)
        trace.sample(1)   # off-grid, ignored
        trace.sample(2)
        assert trace.cycles == [0, 2]
        assert trace.samples["c"] == [1, 1]

    def test_max_occupancy(self):
        ch = Channel("c", capacity=8)
        trace = ChannelOccupancyTrace([ch], every=1)
        trace.sample(0)
        ch.write(1)
        ch.write(2)
        ch.commit()
        trace.sample(1)
        assert trace.max_occupancy("c") == 2

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ChannelOccupancyTrace([], every=0)


class TestThroughputTrace:
    def test_windowed_rate(self):
        trace = ThroughputTrace(window=10)
        for cycle in range(1, 21):
            trace.record(2)
            trace.on_cycle(cycle)
        assert trace.total == 40
        assert trace.history
        assert trace.latest() == pytest.approx(2.0)

    def test_no_history_before_first_window(self):
        trace = ThroughputTrace(window=100)
        trace.record(5)
        trace.on_cycle(50)
        assert trace.history == []
        assert trace.latest() == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ThroughputTrace(window=0)


class TestObsSchemaExport:
    """Both tracers export into the shared repro.obs event schema."""

    def test_occupancy_events_carry_cycle_clock(self):
        ch = Channel("c", capacity=8)
        trace = ChannelOccupancyTrace([ch], every=2)
        ch.write(1)
        ch.commit()
        trace.sample(0)
        trace.sample(2)
        events = trace.to_events()
        assert [e.kind for e in events] == ["sim.channel"] * 2
        assert [e.clock for e in events] == [0, 2]
        assert events[1].data["occupancy"] == {"c": 1}

    def test_throughput_events_align_with_history(self):
        trace = ThroughputTrace(window=10)
        for cycle in range(1, 21):
            trace.record(2)
            trace.on_cycle(cycle)
        events = trace.to_events()
        assert len(events) == len(trace.history)
        assert all(e.kind == "sim.throughput" for e in events)
        assert events[-1].clock == trace.cycles[-1]
        assert events[-1].data["tuples_per_cycle"] == trace.latest()
        assert events[-1].data["window"] == 10

    def test_jsonl_export_round_trips(self, tmp_path):
        from repro.obs import read_jsonl

        trace = ThroughputTrace(window=5)
        for cycle in range(1, 11):
            trace.record(1)
            trace.on_cycle(cycle)
        path = tmp_path / "sim.jsonl"
        written = trace.export_jsonl(path)
        assert written == len(trace.history)
        assert read_jsonl(path) == trace.to_events()
