"""CLI: every command runs and produces the expected artifacts."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--app", "nope"])


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for name in ["fig2a", "fig2b", "table2", "fig7", "table3",
                     "fig8", "fig9"]:
            assert name in out

    def test_unknown_name_fails_cleanly(self, capsys):
        assert main(["experiment", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig2b_runs(self, capsys):
        assert main(["experiment", "fig2b"]) == 0
        assert "Fig.2b" in capsys.readouterr().out

    def test_fig9_runs(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        assert "Fig.9" in capsys.readouterr().out


class TestSimulate:
    def test_verified_run(self, capsys):
        code = main([
            "simulate", "--app", "histo", "--alpha", "2.0",
            "--tuples", "6000", "--secpes", "4", "--verify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified       : OK" in out
        assert "16P+4S" in out

    def test_partition_app(self, capsys):
        code = main([
            "simulate", "--app", "dp", "--alpha", "1.0",
            "--tuples", "4000", "--verify",
        ])
        assert code == 0
        assert "verified       : OK" in capsys.readouterr().out

    def test_hhd_app(self, capsys):
        code = main([
            "simulate", "--app", "hhd", "--alpha", "2.5",
            "--tuples", "4000", "--secpes", "2",
        ])
        assert code == 0


class TestGenerateSelectCodegen:
    def test_generate_prints_full_set(self, capsys):
        assert main(["generate", "--app", "hll"]) == 0
        out = capsys.readouterr().out
        assert "16P+15S" in out
        assert "distinct capacity" in out

    def test_select_reports_required_secpes(self, capsys):
        code = main([
            "select", "--app", "histo", "--alpha", "3.0",
            "--tuples", "60000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "required SecPEs" in out
        assert "selected" in out

    def test_codegen_writes_files(self, tmp_path, capsys):
        code = main([
            "codegen", "--app", "histo", "--secpes", "1",
            "--output", str(tmp_path),
        ])
        assert code == 0
        out_dir = tmp_path / "16P+1S"
        assert (out_dir / "common.h").exists()
        assert (out_dir / "profiler.cl").exists()
        assert "__kernel" in (out_dir / "pe.cl").read_text()


class TestServeSubmit:
    def test_serve_demo_runs_end_to_end(self, capsys):
        code = main([
            "serve", "--demo", "--tuples", "4000", "--workers", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 jobs" in out
        assert "skew-aware" in out
        assert "fleet throughput" in out
        for app in ("hll", "histo", "hhd", "dp"):
            assert f"app={app}" in out

    def test_serve_round_robin_balancer(self, capsys):
        code = main([
            "serve", "--tuples", "4000", "--balancer", "roundrobin",
        ])
        assert code == 0
        assert "round-robin sharding" in capsys.readouterr().out

    def test_submit_histo_job(self, capsys):
        code = main([
            "submit", "--app", "histo", "--tuples", "4000",
            "--alpha", "2.0", "--priority", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "status=completed" in out
        assert "Per-worker load" in out

    def test_submit_pagerank_job(self, capsys):
        code = main([
            "submit", "--app", "pagerank", "--tuples", "3000",
            "--alpha", "1.0", "--vertices", "512",
        ])
        assert code == 0
        assert "status=completed" in capsys.readouterr().out

    def test_serve_process_backend(self, capsys):
        code = main([
            "serve", "--demo", "--tuples", "4000", "--workers", "2",
            "--backend", "process",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 jobs" in out
        assert "process/pipe backend" in out

    def test_serve_process_backend_shm_transport(self, capsys):
        code = main([
            "serve", "--demo", "--tuples", "4000", "--workers", "2",
            "--backend", "process", "--transport", "shm",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 jobs" in out
        assert "process/shm backend" in out

    def test_submit_shm_transport(self, capsys):
        code = main([
            "submit", "--app", "histo", "--tuples", "4000",
            "--backend", "process", "--transport", "shm",
        ])
        assert code == 0
        assert "status=completed" in capsys.readouterr().out

    def test_submit_process_backend(self, capsys):
        code = main([
            "submit", "--app", "histo", "--tuples", "4000",
            "--backend", "process",
        ])
        assert code == 0
        assert "status=completed" in capsys.readouterr().out


class TestNetworkCLI:
    def test_ingest_serves_submit_connect_round_trip(self, tmp_path,
                                                     capsys):
        import threading
        import time

        ready = tmp_path / "ready"
        server = threading.Thread(target=main, args=([
            "ingest", "--serve-jobs", "1", "--workers", "2",
            "--ready-file", str(ready),
        ],))
        server.start()
        deadline = time.monotonic() + 30.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "gateway never came up"
        host, port = ready.read_text().split()
        code = main([
            "submit", "--connect", f"{host}:{port}", "--app", "histo",
            "--tuples", "4000", "--alpha", "2.0",
        ])
        server.join(timeout=60.0)
        assert code == 0
        assert not server.is_alive()
        out = capsys.readouterr().out
        assert "status=completed" in out
        assert "over the wire" in out
        assert "gateway" in out  # ingest printed the fleet report

    def test_connect_rejects_bad_address(self):
        with pytest.raises(SystemExit):
            main(["submit", "--connect", "nonsense"])


class TestTraceCLI:
    def test_serve_captures_and_trace_analyzes(self, tmp_path, capsys):
        capture = tmp_path / "capture.jsonl"
        code = main([
            "serve", "--demo", "--tuples", "4000", "--workers", "2",
            "--adaptive", "--trace", str(capture),
        ])
        assert code == 0
        assert "trace: wrote" in capsys.readouterr().out
        assert capture.exists()

        code = main(["trace", str(capture), "--tail", "2",
                     "--decisions"])
        assert code == 0
        out = capsys.readouterr().out
        assert "events from" in out
        assert '"kind"' in out  # tailed raw JSON
        assert "queue p50/p95 (tup)" in out  # stage breakdown header
        assert "control decisions" in out

    def test_trace_tenant_and_kind_filters(self, tmp_path, capsys):
        capture = tmp_path / "capture.jsonl"
        main(["serve", "--demo", "--tuples", "4000", "--workers", "2",
              "--trace", str(capture)])
        capsys.readouterr()
        code = main(["trace", str(capture), "--tenant", "batch",
                     "--kind", "job."])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch" in out
        assert "interactive" not in out

    def test_trace_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stats_fetches_prometheus_from_gateway(self, tmp_path,
                                                   capsys):
        import threading
        import time

        ready = tmp_path / "ready"
        server = threading.Thread(target=main, args=([
            "ingest", "--serve-jobs", "1", "--workers", "2",
            "--ready-file", str(ready),
        ],))
        server.start()
        deadline = time.monotonic() + 30.0
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert ready.exists(), "gateway never came up"
        host, port = ready.read_text().split()
        try:
            code = main(["stats", "--connect", f"{host}:{port}",
                         "--format", "prometheus"])
            assert code == 0
            out = capsys.readouterr().out
            # The ingest thread's startup banner shares the captured
            # stdout; the exposition starts at its first HELP line.
            body = out[out.index("# HELP"):]
            from repro.obs.exposition import parse_prometheus
            assert parse_prometheus(body)
        finally:
            main([
                "submit", "--connect", f"{host}:{port}",
                "--app", "histo", "--tuples", "4000",
            ])
            server.join(timeout=60.0)
        assert not server.is_alive()
