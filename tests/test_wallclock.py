"""The vetted wall-clock shim and its deterministic-path consumers.

``repro.wallclock`` is the only sanctioned door to host time for
modules on the deterministic dispatch-clock path (enforced by the
``determinism`` lint rule).  These tests pin the two consumer sites
that PR 10 rerouted — trace wall stamps and queue pop deadlines — to
the shim, so shadow replay can fake both by patching one module.
"""

import time

from repro import wallclock
from repro.obs import events as trace_events
from repro.obs.collector import TraceCollector
from repro.service.queue import JobQueue


class TestShim:
    def test_now_tracks_host_epoch_time(self):
        before = time.time()
        stamp = wallclock.now()
        after = time.time()
        assert before <= stamp <= after

    def test_monotonic_never_goes_backwards(self):
        readings = [wallclock.monotonic() for _ in range(100)]
        assert readings == sorted(readings)


class TestCollectorUsesShim:
    def test_event_wall_stamp_comes_from_wallclock(self, monkeypatch):
        # Faking the shim must fake every emitted wall stamp — the
        # property shadow replay relies on.
        monkeypatch.setattr(wallclock, "now", lambda: 123.5)
        tracer = TraceCollector(enabled=True)
        tracer.emit(trace_events.JOB_SUBMIT, 7, job_id="j-1")
        (event,) = tracer.events()
        assert event.wall == 123.5
        assert event.clock == 7


class TestQueueUsesShim:
    def test_pop_deadline_reads_the_shim_not_time(self, monkeypatch):
        # Each fake reading advances a full second, so the 0.5 s
        # timeout expires on the shim's clock before any real wait: a
        # queue still reading time.monotonic() directly would sleep
        # the real half second instead.
        ticks = iter(float(i) for i in range(10))
        monkeypatch.setattr(wallclock, "monotonic",
                            lambda: next(ticks))
        start = time.monotonic()
        assert JobQueue().pop(timeout=0.5) is None
        assert time.monotonic() - start < 0.4
