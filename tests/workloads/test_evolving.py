"""Evolving-skew streams (Fig. 9 workload)."""

import numpy as np
import pytest

from repro.workloads.evolving import EvolvingZipfStream


def test_segment_count_and_sizes():
    stream = EvolvingZipfStream(alpha=3.0, interval_tuples=1000,
                                total_tuples=2500)
    segments = list(stream.segments())
    assert stream.num_segments == 3
    assert [len(s.batch) for s in segments] == [1000, 1000, 500]

def test_validation():
    with pytest.raises(ValueError):
        EvolvingZipfStream(alpha=3.0, interval_tuples=0, total_tuples=10)
    with pytest.raises(ValueError):
        EvolvingZipfStream(alpha=3.0, interval_tuples=10, total_tuples=0)

def test_segments_have_distinct_seeds_and_hot_keys():
    stream = EvolvingZipfStream(alpha=3.0, interval_tuples=3000,
                                total_tuples=9000, base_seed=1)
    segments = list(stream.segments())
    seeds = {s.seed for s in segments}
    assert len(seeds) == 3
    hot_pes = []
    for seg in segments:
        dst = (seg.batch.keys % np.uint64(16)).astype(int)
        hot_pes.append(int(np.bincount(dst, minlength=16).argmax()))
    # With alpha=3 each segment is dominated by one PE; the dominant PE
    # should move at least once across three segments.
    assert len(set(hot_pes)) >= 2

def test_materialize_concatenates_everything():
    stream = EvolvingZipfStream(alpha=1.0, interval_tuples=400,
                                total_tuples=1000)
    batch = stream.materialize()
    assert len(batch) == 1000

def test_segment_shares_shape_and_normalisation():
    stream = EvolvingZipfStream(alpha=2.0, interval_tuples=500,
                                total_tuples=1500)
    shares = stream.segment_shares(destinations=16)
    assert shares.shape == (3, 16)
    assert np.allclose(shares.sum(axis=1), 1.0)
