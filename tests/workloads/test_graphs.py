"""Graph suite: structure, degree ordering, skew statistics."""

import numpy as np
import pytest

from repro.workloads.graphs import GraphDataset, paper_graph_suite, rmat_graph


class TestGraphDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GraphDataset("bad", 4, np.array([0, 1]), np.array([1]))

    def test_degree_accounting(self):
        g = GraphDataset("tri", 3,
                         np.array([0, 1, 2, 1, 2, 0]),
                         np.array([1, 2, 0, 0, 1, 2]))
        assert g.num_edges == 6
        assert g.avg_degree == pytest.approx(2.0)
        assert list(g.out_degrees()) == [2, 2, 2]
        assert list(g.in_degrees()) == [2, 2, 2]

    def test_max_in_share(self):
        g = GraphDataset("star", 4,
                         np.array([1, 2, 3]),
                         np.array([0, 0, 0]))
        assert g.max_in_share(4) == pytest.approx(1.0)


class TestRmat:
    def test_shapes_and_vertex_range(self):
        g = rmat_graph("r", scale=8, edge_factor=4, seed=1)
        assert g.num_vertices == 256
        assert g.num_edges == 2 * 256 * 4          # symmetrised
        assert g.src.max() < 256 and g.dst.max() < 256

    def test_symmetric(self):
        g = rmat_graph("r", scale=6, edge_factor=2, seed=2)
        fwd = set(zip(g.src.tolist(), g.dst.tolist()))
        assert all((d, s) in fwd for s, d in fwd)

    def test_heavy_tail(self):
        """RMAT in-degrees are heavy-tailed: the max far exceeds the
        mean (the PR skew driver)."""
        g = rmat_graph("r", scale=10, edge_factor=8, seed=3)
        degrees = g.in_degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            rmat_graph("r", scale=0, edge_factor=4)


class TestSuite:
    def test_nine_graphs_in_ascending_degree(self):
        suite = paper_graph_suite(scale_factor=0.05)
        assert len(suite) == 9
        degrees = [g.avg_degree for g in suite]
        assert degrees == sorted(degrees)

    def test_degree_range_spans_an_order_of_magnitude(self):
        suite = paper_graph_suite(scale_factor=0.05)
        assert suite[-1].avg_degree > 10 * suite[0].avg_degree

    def test_skew_grows_with_degree_overall(self):
        """Fig. 8's driver: higher-degree graphs concentrate more edges
        on the hottest PE."""
        suite = paper_graph_suite(scale_factor=0.05)
        shares = [g.max_in_share(16) for g in suite]
        assert shares[-1] > shares[0]
