"""Network arrival model."""

import pytest

from repro.workloads.streams import NetworkModel


def test_100gbps_8byte_rate():
    net = NetworkModel(line_rate_gbps=100.0, tuple_bytes=8)
    assert net.tuples_per_second == pytest.approx(1.5625e9)

def test_roundtrip_tuples_seconds():
    net = NetworkModel()
    n = net.tuples_in(2e-3)
    assert net.seconds_for(n) == pytest.approx(2e-3, rel=1e-6)

def test_throughput_gbps():
    net = NetworkModel()
    # 1.5625e9 tuples in one second is exactly line rate.
    assert net.throughput_gbps(1_562_500_000, 1.0) == pytest.approx(100.0)

def test_validation():
    with pytest.raises(ValueError):
        NetworkModel(line_rate_gbps=0)
    with pytest.raises(ValueError):
        NetworkModel(tuple_bytes=0)
    net = NetworkModel()
    with pytest.raises(ValueError):
        net.tuples_in(-1)
    with pytest.raises(ValueError):
        net.seconds_for(-1)
    with pytest.raises(ValueError):
        net.throughput_gbps(10, 0)
