"""TupleBatch: construction, slicing, sampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.tuples import TupleBatch


def make(n=10):
    return TupleBatch(np.arange(n, dtype=np.uint64),
                      np.arange(n, dtype=np.int64))


def test_length_and_bytes():
    batch = make(10)
    assert len(batch) == 10
    assert batch.nbytes == 80

def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        TupleBatch(np.zeros(3, np.uint64), np.zeros(2, np.int64))

def test_bad_tuple_bytes_rejected():
    with pytest.raises(ValueError):
        TupleBatch(np.zeros(1, np.uint64), np.zeros(1), tuple_bytes=0)

def test_iteration_yields_scalar_pairs():
    batch = make(3)
    assert list(batch) == [(0, 0), (1, 1), (2, 2)]

def test_slice_is_view_of_range():
    batch = make(10)
    part = batch.slice(2, 5)
    assert len(part) == 3
    assert part.keys[0] == 2

def test_concat():
    joined = make(3).concat(make(2))
    assert len(joined) == 5

def test_concat_rejects_mismatched_tuple_bytes():
    a = make(2)
    b = TupleBatch(np.zeros(2, np.uint64), np.zeros(2), tuple_bytes=16)
    with pytest.raises(ValueError):
        a.concat(b)

def test_from_keys_sets_unit_values():
    batch = TupleBatch.from_keys(np.array([5, 6], dtype=np.uint64))
    assert list(batch.values) == [1, 1]

class TestSampling:
    def test_sample_size(self):
        batch = make(1000)
        assert len(batch.sample(0.1, seed=1)) == 100

    def test_sample_at_least_one(self):
        assert len(make(10).sample(0.001)) == 1

    def test_sample_fraction_validated(self):
        with pytest.raises(ValueError):
            make(10).sample(0.0)
        with pytest.raises(ValueError):
            make(10).sample(1.5)

    def test_sample_is_deterministic_per_seed(self):
        batch = make(100)
        a = batch.sample(0.2, seed=5)
        b = batch.sample(0.2, seed=5)
        assert np.array_equal(a.keys, b.keys)

    @given(st.integers(min_value=10, max_value=500))
    def test_property_sample_is_subset(self, n):
        batch = make(n)
        sample = batch.sample(0.3, seed=2)
        assert set(sample.keys.tolist()) <= set(batch.keys.tolist())
