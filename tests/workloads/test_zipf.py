"""Zipf generator: pmf correctness, skew behaviour, seed effects."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.zipf import ZipfGenerator, zipf_pmf


class TestPmf:
    def test_alpha_zero_is_uniform(self):
        pmf = zipf_pmf(100, 0.0)
        assert np.allclose(pmf, 0.01)

    def test_normalised(self):
        assert zipf_pmf(1000, 2.0).sum() == pytest.approx(1.0)

    def test_monotone_decreasing_in_rank(self):
        pmf = zipf_pmf(50, 1.5)
        assert all(pmf[i] >= pmf[i + 1] for i in range(49))

    def test_rank1_share_alpha3(self):
        """P(rank 1) = 1/zeta(3) ~ 0.832 — the source of the paper's
        13.3x hottest heatmap cell (13.3/16 = 0.83)."""
        pmf = zipf_pmf(1 << 20, 3.0)
        assert pmf[0] == pytest.approx(0.8319, abs=2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_pmf(10, -0.5)


class TestGenerator:
    def test_generates_requested_count(self):
        batch = ZipfGenerator(alpha=1.0, seed=1).generate(5000)
        assert len(batch) == 5000

    def test_rejects_bad_count_and_universe(self):
        with pytest.raises(ValueError):
            ZipfGenerator(alpha=1.0).generate(0)
        with pytest.raises(ValueError):
            ZipfGenerator(alpha=1.0, universe=1)

    def test_uniform_spreads_over_pes(self):
        gen = ZipfGenerator(alpha=0.0, seed=2)
        batch = gen.generate(32_000)
        dst = (batch.keys % np.uint64(16)).astype(int)
        shares = np.bincount(dst, minlength=16) / 32_000
        assert shares.max() < 0.085          # ~1/16 each

    def test_extreme_skew_concentrates(self):
        gen = ZipfGenerator(alpha=3.0, seed=2)
        batch = gen.generate(32_000)
        dst = (batch.keys % np.uint64(16)).astype(int)
        shares = np.bincount(dst, minlength=16) / 32_000
        assert shares.max() > 0.75

    def test_seed_moves_the_hot_pe(self):
        """Fig. 2a: 'overloaded PEs vary across datasets' — different
        seeds put the dominant key on different PEs."""
        hot_pes = set()
        for seed in range(12):
            gen = ZipfGenerator(alpha=3.0, seed=seed)
            batch = gen.generate(4000)
            dst = (batch.keys % np.uint64(16)).astype(int)
            hot_pes.add(int(np.bincount(dst, minlength=16).argmax()))
        assert len(hot_pes) >= 4

    def test_deterministic_per_seed(self):
        a = ZipfGenerator(alpha=1.5, seed=7).generate(100)
        b = ZipfGenerator(alpha=1.5, seed=7).generate(100)
        assert np.array_equal(a.keys, b.keys)

    @settings(deadline=None, max_examples=20)
    @given(alpha=st.floats(min_value=0.0, max_value=3.0))
    def test_property_keys_within_universe(self, alpha):
        gen = ZipfGenerator(alpha=alpha, universe=1 << 12, seed=3)
        batch = gen.generate(500)
        assert batch.keys.max() < (1 << 12)


class TestExpectedShares:
    def test_shares_sum_to_one(self):
        gen = ZipfGenerator(alpha=2.0, seed=4)
        shares = gen.expected_shares(destinations=16)
        assert shares.sum() == pytest.approx(1.0)

    def test_skew_increases_max_share(self):
        maxima = []
        for alpha in [0.0, 1.0, 2.0, 3.0]:
            gen = ZipfGenerator(alpha=alpha, seed=4)
            maxima.append(gen.expected_shares(destinations=16).max())
        assert maxima == sorted(maxima)

    def test_custom_route_function(self):
        gen = ZipfGenerator(alpha=0.0, seed=4)
        shares = gen.expected_shares(
            route=lambda keys: np.zeros(len(keys), dtype=np.int64),
            destinations=4,
        )
        assert shares[0] == pytest.approx(1.0)
